package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// analyzerByName returns a fresh instance so cross-package state
// (metricnames) never leaks between test cases.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer %q", name)
	return nil
}

// expectation is one parsed "// want <rule> "substring"" comment.
type expectation struct {
	file string
	line int
	rule string
	sub  string
}

var wantRE = regexp.MustCompile(`(\w+) "([^"]*)"`)

// parseWants extracts expectations from trailing "// want" comments.
// The expectation's line is the comment's line, so wants annotate the
// flagged line itself.
func parseWants(pkg *Package) []expectation {
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					wants = append(wants, expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						rule: m[1],
						sub:  m[2],
					})
				}
			}
		}
	}
	return wants
}

// checkFixture loads dir as importPath, runs the named analyzer
// through the full Check pipeline (so //lint:allow handling is
// exercised too), and diffs diagnostics against want comments.
func checkFixture(t *testing.T, dir, importPath, rule string) {
	t.Helper()
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := Check(pkg, []*Analyzer{analyzerByName(t, rule)})
	wants := parseWants(pkg)

	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] || w.rule != d.Rule || w.line != d.Pos.Line || filepath.Base(d.Pos.Filename) != w.file {
				continue
			}
			if !strings.Contains(d.Message, w.sub) {
				t.Errorf("%s: rule %s fired at the wanted line but message %q lacks %q", d.Pos, d.Rule, d.Message, w.sub)
			}
			matched[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: want %s %q, but the analyzer stayed silent", w.file, w.line, w.rule, w.sub)
		}
	}
}

func TestAnalyzersAgainstFixtures(t *testing.T) {
	cases := []struct {
		rule       string
		dir        string
		importPath string
	}{
		// determinism only polices the deterministic package set, so the
		// fixture borrows a deterministic import path.
		{"determinism", "testdata/determinism", "vup/internal/experiments"},
		{"floatsafety", "testdata/floatsafety", "vup/fixture/floatsafety"},
		{"errdiscipline", "testdata/errdiscipline", "vup/fixture/errdiscipline"},
		{"metricnames", "testdata/metricnames", "vup/fixture/metricnames"},
		{"printhygiene", "testdata/printhygiene", "vup/fixture/printhygiene"},
		// pinleak matches on the server.Store receiver and the ctxwait
		// scope is internal/server, so those fixtures borrow its path.
		{"pinleak", "testdata/pinleak", "vup/internal/server"},
		{"lockhold", "testdata/lockhold", "vup/fixture/lockhold"},
		{"ctxwait", "testdata/ctxwait", "vup/internal/server"},
		{"deferinloop", "testdata/deferinloop", "vup/fixture/deferinloop"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			t.Parallel()
			checkFixture(t, tc.dir, tc.importPath, tc.rule)
		})
	}
}

// TestScopeExemptions proves the rules go quiet where they are
// documented to: determinism outside its package set, printhygiene in
// main packages and textplot.
func TestScopeExemptions(t *testing.T) {
	cases := []struct {
		name       string
		rule       string
		dir        string
		importPath string
	}{
		{"determinism-elsewhere", "determinism", "testdata/determinism", "vup/internal/server"},
		{"printhygiene-main", "printhygiene", "testdata/printmain", "vup/cmd/demo"},
		{"printhygiene-textplot", "printhygiene", "testdata/printhygiene", "vup/internal/textplot"},
		// A worker-pool channel in internal/parallel has no request ctx
		// to honor, so the same waits are fine there.
		{"ctxwait-elsewhere", "ctxwait", "testdata/ctxwait", "vup/internal/parallel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			pkg, err := LoadDir(tc.dir, tc.importPath)
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			var diags []Diagnostic
			for _, d := range Check(pkg, []*Analyzer{analyzerByName(t, tc.rule)}) {
				if d.Rule == tc.rule { // ignore now-unused //lint:allow reports
					diags = append(diags, d)
				}
			}
			if len(diags) != 0 {
				t.Fatalf("rule %s should be exempt for %s, got %v", tc.rule, tc.importPath, diags)
			}
		})
	}
}

// TestDirectives pins the //lint:allow machinery: malformed directives
// are reported and do not suppress, justified ones suppress, and dead
// ones are flagged.
func TestDirectives(t *testing.T) {
	pkg, err := LoadDir("testdata/directives", "vup/fixture/directives")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Check(pkg, All())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	want := []string{
		"12:errdiscipline", // malformed directive does not suppress
		"12:directive",     // ...and is itself reported
		"19:directive",     // dead directive
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("directive handling mismatch:\n got %v\nwant %v", got, want)
	}
	for _, d := range diags {
		if d.Pos.Line == 19 && !strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("dead directive message = %q", d.Message)
		}
		if d.Pos.Line == 12 && d.Rule == DirectiveRule && !strings.Contains(d.Message, "malformed") {
			t.Errorf("malformed directive message = %q", d.Message)
		}
	}
}

// TestFlowDirectives is TestDirectives for the flow rules: every new
// analyzer honors a justified //lint:allow, a reasonless one is
// malformed and suppresses nothing, and a dead one is reported.
func TestFlowDirectives(t *testing.T) {
	pkg, err := LoadDir("testdata/flowdirectives", "vup/internal/server")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Check(pkg, All())
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d:%s", d.Pos.Line, d.Rule))
	}
	want := []string{
		"60:ctxwait",   // reasonless directive does not suppress
		"60:directive", // ...and is itself reported as malformed
		"63:directive", // dead directive over a clean function
	}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("flow directive handling mismatch:\n got %v\nwant %v", got, want)
	}
	for _, d := range diags {
		if d.Pos.Line == 63 && !strings.Contains(d.Message, "suppresses nothing") {
			t.Errorf("dead directive message = %q", d.Message)
		}
		if d.Pos.Line == 60 && d.Rule == DirectiveRule && !strings.Contains(d.Message, "malformed") {
			t.Errorf("malformed directive message = %q", d.Message)
		}
	}
}

// TestRepoIsClean is the in-process version of the CI gate: the whole
// module must lint clean. Running it here keeps `go test ./...` and
// the vup-lint binary in agreement.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load returned %d packages; expected the whole module", len(pkgs))
	}
	analyzers := All()
	for _, pkg := range pkgs {
		for _, d := range Check(pkg, analyzers) {
			t.Errorf("%s", d)
		}
	}
}
