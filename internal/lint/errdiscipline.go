package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// newErrDiscipline builds the errdiscipline analyzer: a call whose
// result set ends in error, used as a bare statement, silently drops
// the error. This is the class behind PR 3's writeJSON fixes — an
// Encode failure after the header is sent used to vanish.
//
// What does NOT fire, by design:
//
//   - explicit acknowledgment: `_ = f()` and `_, _ = fmt.Fprintf(...)`
//     are assignments, not bare statements — writing the blank is the
//     audit trail;
//   - defer and go statements — `defer f.Close()` on read paths is
//     idiomatic; flagging it buys noise, not safety. The one deferred
//     shape that IS flagged: `defer f.Close()` on a file this function
//     opened for writing (os.Create, or os.OpenFile with write flags)
//     with no explicit Close anywhere else in the function — the
//     final write error lands in Close, and a bare defer swallows it.
//     An explicit Close on the success path silences it (the defer
//     then only covers early returns), as does capturing the error in
//     a deferred closure;
//   - fmt.Print/Printf/Println to stdout — process stdout is the
//     program's product in the cmd binaries, and printhygiene already
//     polices it in libraries;
//   - fmt.Fprint* into *strings.Builder or *bytes.Buffer, any method
//     called on those two types, and Write on a hash.Hash — all
//     documented never to fail.
//
// fmt.Fprintf to a real writer (an http.ResponseWriter, a file,
// os.Stderr) and json.Encoder.Encode do fire: those errors are real
// and must be checked, counted, or deliberately blanked.
func newErrDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "errdiscipline",
		Doc:  "flag bare call statements that discard a returned error",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pkg.Info, call) || exemptCall(pkg.Info, call) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(call.Pos()),
					Rule:    a.Name,
					Message: fmt.Sprintf("error returned by %s is silently discarded; check it or assign to _", exprString(call.Fun)),
				})
				return true
			})
			for _, body := range funcUnits(f) {
				diags = append(diags, writableDeferUnit(pkg, a.Name, body)...)
			}
		}
		return diags
	}
	return a
}

// writableDeferUnit flags `defer f.Close()` on a file the unit opened
// for writing when no other Close of the same handle exists: Close
// flushes the final buffered write, so the bare defer is the one place
// a short write can vanish without a trace.
func writableDeferUnit(pkg *Package, rule string, body *ast.BlockStmt) []Diagnostic {
	// Handles opened for writing at this unit's nesting level.
	writable := map[types.Object]bool{}
	shallowStmts(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(pkg.Info, call)
		if obj == nil || obj.Type().(*types.Signature).Recv() != nil || !pathIs(obj.Pkg(), "os") {
			return true
		}
		switch obj.Name() {
		case "Create", "CreateTemp":
		case "OpenFile":
			if len(call.Args) < 2 || !writableFlags(call.Args[1]) {
				return true
			}
		default:
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if o := objectOf(pkg.Info, id); o != nil {
				writable[o] = true
			}
		}
		return true
	})
	if len(writable) == 0 {
		return nil
	}

	// Deferred f.Close() statements are candidates; any other Close of
	// the same handle (the explicit success-path one, which the defer
	// then merely backstops) clears them. A Close inside a deferred
	// closure that captures the error never gets here at all — the
	// closure is a nested unit that shallowStmts skips.
	deferCalls := map[*ast.CallExpr]bool{}
	shallowStmts(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferCalls[d.Call] = true
		}
		return true
	})
	type candidate struct {
		d   *ast.DeferStmt
		obj types.Object
	}
	var cands []candidate
	closed := map[types.Object]bool{}
	shallowStmts(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := closeReceiver(pkg.Info, n.Call); obj != nil && writable[obj] {
				cands = append(cands, candidate{n, obj})
			}
		case *ast.CallExpr:
			if deferCalls[n] {
				return true
			}
			if obj := closeReceiver(pkg.Info, n); obj != nil {
				closed[obj] = true
			}
		}
		return true
	})
	var diags []Diagnostic
	for _, c := range cands {
		if closed[c.obj] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:     pkg.Fset.Position(c.d.Pos()),
			Rule:    rule,
			Message: fmt.Sprintf("deferred Close on writable file %s discards the final write error; close explicitly on the success path or capture the error in a deferred closure", c.obj.Name()),
		})
	}
	return diags
}

// closeReceiver returns the variable x of an `x.Close()` call on an
// *os.File, or nil.
func closeReceiver(info *types.Info, call *ast.CallExpr) types.Object {
	obj := calleeFunc(info, call)
	if obj == nil || obj.Name() != "Close" || !recvIsNamed(obj, "os", "File") {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return objectOf(info, id)
}

// writableFlags reports whether an os.OpenFile flag expression requests
// write access.
func writableFlags(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				found = true
			}
		}
		return true
	})
	return found
}

// returnsError reports whether the call's last result is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

// exemptCall implements the deliberate holes in the rule.
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeFunc(info, call)
	if obj == nil {
		return false
	}
	// fmt.Print* write to stdout; the cmd binaries' stdout IS the output.
	switch obj.Name() {
	case "Print", "Printf", "Println":
		if pathIs(obj.Pkg(), "fmt") && obj.Type().(*types.Signature).Recv() == nil {
			return true
		}
	case "Fprint", "Fprintf", "Fprintln":
		if pathIs(obj.Pkg(), "fmt") && len(call.Args) > 0 && neverFailingWriter(info.TypeOf(call.Args[0])) {
			return true
		}
	}
	// Methods on in-memory buffers never return a non-nil error.
	if recvIsNamed(obj, "strings", "Builder") || recvIsNamed(obj, "bytes", "Buffer") {
		return true
	}
	// hash.Hash documents that Write never returns an error. Key on the
	// receiver expression's static type: the method object itself
	// resolves to the embedded io.Writer, which must NOT be exempt.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && obj.Name() == "Write" {
		t := info.TypeOf(sel.X)
		if isNamedType(t, "hash", "Hash") || isNamedType(t, "hash", "Hash32") || isNamedType(t, "hash", "Hash64") {
			return true
		}
	}
	return false
}

func neverFailingWriter(t types.Type) bool {
	return isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")
}
