package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// newErrDiscipline builds the errdiscipline analyzer: a call whose
// result set ends in error, used as a bare statement, silently drops
// the error. This is the class behind PR 3's writeJSON fixes — an
// Encode failure after the header is sent used to vanish.
//
// What does NOT fire, by design:
//
//   - explicit acknowledgment: `_ = f()` and `_, _ = fmt.Fprintf(...)`
//     are assignments, not bare statements — writing the blank is the
//     audit trail;
//   - defer and go statements — `defer f.Close()` on read paths is
//     idiomatic; flagging it buys noise, not safety;
//   - fmt.Print/Printf/Println to stdout — process stdout is the
//     program's product in the cmd binaries, and printhygiene already
//     polices it in libraries;
//   - fmt.Fprint* into *strings.Builder or *bytes.Buffer, any method
//     called on those two types, and Write on a hash.Hash — all
//     documented never to fail.
//
// fmt.Fprintf to a real writer (an http.ResponseWriter, a file,
// os.Stderr) and json.Encoder.Encode do fire: those errors are real
// and must be checked, counted, or deliberately blanked.
func newErrDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "errdiscipline",
		Doc:  "flag bare call statements that discard a returned error",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmt, ok := n.(*ast.ExprStmt)
				if !ok {
					return true
				}
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pkg.Info, call) || exemptCall(pkg.Info, call) {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:     pkg.Fset.Position(call.Pos()),
					Rule:    a.Name,
					Message: fmt.Sprintf("error returned by %s is silently discarded; check it or assign to _", exprString(call.Fun)),
				})
				return true
			})
		}
		return diags
	}
	return a
}

// returnsError reports whether the call's last result is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

// exemptCall implements the deliberate holes in the rule.
func exemptCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeFunc(info, call)
	if obj == nil {
		return false
	}
	// fmt.Print* write to stdout; the cmd binaries' stdout IS the output.
	switch obj.Name() {
	case "Print", "Printf", "Println":
		if pathIs(obj.Pkg(), "fmt") && obj.Type().(*types.Signature).Recv() == nil {
			return true
		}
	case "Fprint", "Fprintf", "Fprintln":
		if pathIs(obj.Pkg(), "fmt") && len(call.Args) > 0 && neverFailingWriter(info.TypeOf(call.Args[0])) {
			return true
		}
	}
	// Methods on in-memory buffers never return a non-nil error.
	if recvIsNamed(obj, "strings", "Builder") || recvIsNamed(obj, "bytes", "Buffer") {
		return true
	}
	// hash.Hash documents that Write never returns an error. Key on the
	// receiver expression's static type: the method object itself
	// resolves to the embedded io.Writer, which must NOT be exempt.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && obj.Name() == "Write" {
		t := info.TypeOf(sel.X)
		if isNamedType(t, "hash", "Hash") || isNamedType(t, "hash", "Hash32") || isNamedType(t, "hash", "Hash64") {
			return true
		}
	}
	return false
}

func neverFailingWriter(t types.Type) bool {
	return isNamedType(t, "strings", "Builder") || isNamedType(t, "bytes", "Buffer")
}
