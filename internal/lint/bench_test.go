package lint

import "testing"

// BenchmarkLintRepo is the whole-repo wall-clock of one vup-lint run:
// go list -deps -export over the module, parse + type-check every
// package, and all nine analyzers (including the CFG/dataflow rules)
// through the full Check pipeline. CI runs it with -benchtime=1x under
// a timeout as the lint-cost budget; BENCH_lint.json records the
// baseline. The bench also asserts cleanliness — a finding here means
// the tree and TestRepoIsClean disagree, which would make the recorded
// wall-clock meaningless.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := Load("../..", "./...")
		if err != nil {
			b.Fatalf("Load: %v", err)
		}
		if len(pkgs) < 20 {
			b.Fatalf("Load returned %d packages; expected the whole module", len(pkgs))
		}
		analyzers := All()
		count := 0
		for _, pkg := range pkgs {
			count += len(Check(pkg, analyzers))
		}
		if count != 0 {
			b.Fatalf("repo is not lint-clean: %d diagnostics", count)
		}
	}
}
