package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
)

// deterministicPkgs are the packages whose outputs must be
// byte-identical run-to-run and across worker counts: everything on
// the figure/evaluation path. Matched by import-path suffix so the
// rule also applies under fixture modules.
var deterministicPkgs = []string{
	"internal/core",
	"internal/experiments",
	"internal/fleet",
	"internal/featsel",
	"internal/regress",
	"internal/stats",
}

func isDeterministicPkg(importPath string) bool {
	for _, p := range deterministicPkgs {
		if importPathIs(importPath, p) {
			return true
		}
	}
	return false
}

// newDeterminism builds the determinism analyzer. In deterministic
// packages it forbids:
//
//   - time.Now — wall-clock reads make outputs differ run to run. The
//     stage timers that feed obs histograms are the one sanctioned use
//     and carry //lint:allow directives.
//   - importing math/rand or math/rand/v2 — all randomness must flow
//     through internal/randx so streams are seeded and splittable.
//   - capturing a *randx.RNG inside a closure handed to
//     internal/parallel — a shared generator drawn from concurrently
//     makes results depend on goroutine scheduling. Derive per-job
//     generators with RNG.Split before the fan-out and index into them.
func newDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, raw math/rand and shared-RNG capture in deterministic packages",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		if !isDeterministicPkg(pkg.ImportPath) {
			return nil
		}
		var diags []Diagnostic
		report := func(n ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(n.Pos()),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		for _, f := range pkg.Files {
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					report(spec, "deterministic package imports %s; draw randomness from internal/randx instead", path)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeFunc(pkg.Info, call)
				if isPkgFunc(obj, "time", "Now") {
					report(call, "time.Now in deterministic package; outputs must not depend on wall-clock")
				}
				if obj != nil && obj.Type().(*types.Signature).Recv() == nil && pathIs(obj.Pkg(), "internal/parallel") {
					checkFanOut(pkg, call, report)
				}
				return true
			})
		}
		return diags
	}
	return a
}

// checkFanOut flags closures passed to internal/parallel functions
// that reference a *randx.RNG declared outside the closure.
func checkFanOut(pkg *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		seen := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pkg.Info.Uses[id].(*types.Var)
			if !ok || seen[obj] {
				return true
			}
			if !isNamedType(obj.Type(), "internal/randx", "RNG") {
				return true
			}
			// Declared inside the closure (per-job Split result) is fine.
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return true
			}
			seen[obj] = true
			report(id, "worker closure captures shared *randx.RNG %q; Split per-job generators before the fan-out", id.Name)
			return true
		})
	}
}
