package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
)

// metricNameRE is the project's Prometheus naming convention: snake
// case with a unit-or-kind suffix. Counters end in _total, duration
// histograms in _seconds, sized gauges in _entries, _bytes or
// _vehicles, and concurrency gauges in _in_flight.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]+(_total|_seconds|_entries|_in_flight|_bytes|_vehicles)$`)

// newMetricNames builds the metricnames analyzer. Every call to
// obs.Registry's Counter, Gauge, Histogram or HistogramWithExemplars
// must pass a compile-time constant name matching metricNameRE, and
// each name must be
// registered at exactly one site across the whole run — obs panics at
// init on a conflicting re-registration, so a duplicate that slips in
// is a process crash, not a lint nit. The analyzer keeps cross-package
// state for the uniqueness check; All() hands out fresh instances.
func newMetricNames() *Analyzer {
	a := &Analyzer{
		Name: "metricnames",
		Doc:  "enforce Prometheus naming and single registration for obs metrics",
	}
	seen := map[string]token.Position{}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		report := func(n ast.Node, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(n.Pos()),
				Rule:    a.Name,
				Message: fmt.Sprintf(format, args...),
			})
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				obj := calleeFunc(pkg.Info, call)
				if obj == nil || !recvIsNamed(obj, "internal/obs", "Registry") {
					return true
				}
				switch obj.Name() {
				case "Counter", "Gauge", "Histogram", "HistogramWithExemplars":
				default:
					return true
				}
				tv, ok := pkg.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					report(call.Args[0], "metric name must be a compile-time string constant")
					return true
				}
				name := constant.StringVal(tv.Value)
				if !metricNameRE.MatchString(name) {
					report(call.Args[0], "metric name %q violates convention %s", name, metricNameRE)
				}
				if first, dup := seen[name]; dup {
					report(call.Args[0], "metric %q already registered at %s:%d; obs panics on conflicting re-registration", name, first.Filename, first.Line)
				} else {
					seen[name] = pkg.Fset.Position(call.Args[0].Pos())
				}
				return true
			})
		}
		return diags
	}
	return a
}
