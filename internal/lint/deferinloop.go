package lint

// deferinloop: a defer inside a loop body runs at function return, not
// at the end of the iteration. For a release-shaped defer — an Acquire
// release func, mutex Unlock, file Close, span End — that means every
// iteration's resource stays held until the whole sweep finishes: on
// the /v1/vehicles listing shape, `defer release()` in the loop would
// pin the entire fleet at once and defeat -resident-budget eviction
// fleet-wide. Only release-shaped defers are flagged; a deferred
// logging closure in a loop is odd but not a leak amplifier.

import (
	"fmt"
	"go/ast"
	"go/types"
)

func newDeferInLoop() *Analyzer {
	a := &Analyzer{
		Name: "deferinloop",
		Doc:  "defer of a release/unlock/close inside a loop body holds every iteration's resource until function return",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		for _, f := range pkg.Files {
			for _, body := range funcUnits(f) {
				diags = append(diags, deferInLoopUnit(pkg, a.Name, body)...)
			}
		}
		return diags
	}
	return a
}

func deferInLoopUnit(pkg *Package, rule string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // its own unit, loop depth resets
			case *ast.ForStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				walk(m.Body, depth+1)
				return false
			case *ast.DeferStmt:
				if depth == 0 {
					return true
				}
				if what := releaseShaped(pkg.Info, m.Call); what != "" {
					diags = append(diags, Diagnostic{
						Pos:     pkg.Fset.Position(m.Pos()),
						Rule:    rule,
						Message: fmt.Sprintf("defer of %s inside a loop runs at function return, not per iteration; call it directly (or hoist the body into a helper)", what),
					})
				}
			}
			return true
		})
	}
	walk(body, 0)
	return diags
}

// releaseShaped recognizes deferred calls that pair with an earlier
// acquire: Unlock/RUnlock, Close, a span End, or a call through a
// plain func() value (the Acquire release shape).
func releaseShaped(info *types.Info, call *ast.CallExpr) string {
	if obj := calleeFunc(info, call); obj != nil {
		switch obj.Name() {
		case "Unlock", "RUnlock", "Close", "End":
			return exprString(call.Fun)
		}
		return ""
	}
	// Indirect call of a niladic func value: `defer release()`.
	t := info.TypeOf(call.Fun)
	if t == nil {
		return ""
	}
	if sig, ok := t.Underlying().(*types.Signature); ok && sig.Params().Len() == 0 && sig.Results().Len() == 0 {
		if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); !isLit {
			return exprString(call.Fun)
		}
	}
	return ""
}
