package lint

// pinleak: paired-resource dataflow. (*server.Store).Acquire hands out
// a pin whose release func must run on every path out of the caller —
// a leaked pin silently defeats -resident-budget eviction, because the
// pinned dataset can never be reclaimed. trace.Start/StartTrace spans
// have the same must-pair shape (a span that is never ended vanishes
// from its trace), so the one engine checks both.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// obligation is one acquired resource tracked through the CFG.
type obligation struct {
	bit    uint64
	assign *ast.AssignStmt // the creating statement (transfer keys on it)
	call   *ast.CallExpr   // the creating call (diagnostic position)
	what   string          // "release func" / "span"
	from   string          // rendered creator, e.g. `s.Acquire`
	res    types.Object    // the release func / span variable
	errv   types.Object    // the paired error result, nil for spans
}

func newPinLeak() *Analyzer {
	a := &Analyzer{
		Name: "pinleak",
		Doc:  "an Acquire release func or trace span must reach its release/End on every path",
	}
	a.Run = func(pkg *Package) []Diagnostic {
		var diags []Diagnostic
		for _, f := range pkg.Files {
			for _, body := range funcUnits(f) {
				diags = append(diags, pinleakUnit(pkg, a.Name, body)...)
			}
		}
		return diags
	}
	return a
}

// pinleakUnit analyzes one function body.
func pinleakUnit(pkg *Package, rule string, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	lits := nestedFuncLits(body)

	// Pass 1: find obligation-creating assignments at this unit's own
	// nesting level.
	var obls []*obligation
	shallowStmts(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		what, resIdx, errIdx := pinSource(pkg.Info, call, len(as.Lhs))
		if what == "" || len(obls) >= 64 {
			return true
		}
		o := &obligation{
			bit:    1 << uint(len(obls)),
			assign: as,
			call:   call,
			what:   what,
			from:   exprString(call.Fun),
		}
		if id, ok := as.Lhs[resIdx].(*ast.Ident); ok && id.Name != "_" {
			o.res = objectOf(pkg.Info, id)
		}
		if errIdx >= 0 {
			if id, ok := as.Lhs[errIdx].(*ast.Ident); ok && id.Name != "_" {
				o.errv = objectOf(pkg.Info, id)
			}
		}
		if o.res == nil {
			// The handle is discarded outright: nothing can ever pair
			// it. Report immediately; no flow needed.
			diags = append(diags, Diagnostic{
				Pos:     pkg.Fset.Position(call.Pos()),
				Rule:    rule,
				Message: fmt.Sprintf("the %s returned by %s is discarded; it must be called on every path", what, o.from),
			})
			return true
		}
		obls = append(obls, o)
		return true
	})
	if len(obls) == 0 {
		return diags
	}

	// Pass 2: classify every use of each resource. A use inside a
	// nested function literal, or one that is not a direct call /
	// End() / nil-comparison / reassignment, makes the handle escape —
	// some other code is responsible for it, so the obligation is
	// dropped (conservative, like go vet's lostcancel).
	discharge := map[*ast.CallExpr]uint64{}
	escaped := map[*obligation]bool{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(pkg.Info, id); obj != nil {
				for _, o := range obls {
					if o.res == obj {
						cls, call := classifyUse(id, stack)
						switch cls {
						case useDischarge:
							if posInLits(lits, id.Pos()) {
								escaped[o] = true // released by a closure, not this unit
							} else {
								discharge[call] |= o.bit
							}
						case useNeutral:
						default:
							escaped[o] = true
						}
					}
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	live := obls[:0]
	for _, o := range obls {
		if !escaped[o] {
			live = append(live, o)
		}
	}
	obls = live
	if len(obls) == 0 {
		return diags
	}

	create := map[ast.Node]uint64{}
	for _, o := range obls {
		create[o.assign] |= o.bit
	}

	fa := flowAnalysis{
		transfer: func(st uint64, n ast.Node) uint64 {
			st |= create[n]
			inspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					st &^= discharge[call]
				}
				return true
			})
			return st
		},
		refine: func(st uint64, cond ast.Expr, taken bool) uint64 {
			for _, o := range obls {
				if st&o.bit == 0 {
					continue
				}
				// "if err != nil { return err }": on the branch where err
				// is proven non-nil the creator returned a nil handle, so
				// there is nothing to release. Same for a branch proving
				// the handle itself nil.
				if o.errv != nil && nilCheckProves(pkg.Info, cond, taken, o.errv, false) {
					st &^= o.bit
				}
				if nilCheckProves(pkg.Info, cond, taken, o.res, true) {
					st &^= o.bit
				}
			}
			return st
		},
	}

	g := buildCFG(pkg.Info, body)
	in := fixpoint(g, fa)
	leaked := map[*obligation]token.Pos{}
	replay(g, in, fa, nil, func(st uint64, blk *cfgBlock) {
		for _, o := range obls {
			if st&o.bit == 0 {
				continue
			}
			pos := g.end
			if blk.ret != nil {
				pos = blk.ret.Pos()
			}
			if old, ok := leaked[o]; !ok || pos < old {
				leaked[o] = pos
			}
		}
	})
	for _, o := range obls {
		pos, ok := leaked[o]
		if !ok {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(o.call.Pos()),
			Rule: rule,
			Message: fmt.Sprintf("the %s returned by %s is not called on every path: it leaks at the function exit on line %d",
				o.what, o.from, pkg.Fset.Position(pos).Line),
		})
	}
	return diags
}

// pinSource recognizes obligation-creating calls and returns what is
// acquired plus the result indexes of the handle and its paired error
// (-1 when the call has no error result). nLhs guards against
// malformed assignment shapes.
func pinSource(info *types.Info, call *ast.CallExpr, nLhs int) (what string, resIdx, errIdx int) {
	obj := calleeFunc(info, call)
	if obj == nil {
		return "", 0, -1
	}
	switch {
	case obj.Name() == "Acquire" && recvIsNamed(obj, "internal/server", "Store"):
		// (d, fp, gen, release, err) — find the func() and error slots
		// from the signature so fixture Stores with fewer results work.
		sig := obj.Type().(*types.Signature)
		resIdx, errIdx = -1, -1
		for i := 0; i < sig.Results().Len() && i < nLhs; i++ {
			t := sig.Results().At(i).Type()
			if s, ok := t.Underlying().(*types.Signature); ok && s.Params().Len() == 0 && s.Results().Len() == 0 {
				resIdx = i
			}
			if isErrorType(t) {
				errIdx = i
			}
		}
		if resIdx < 0 {
			return "", 0, -1
		}
		return "release func", resIdx, errIdx
	case isPkgFunc(obj, "obs/trace", "Start"):
		// (ctx, *Span)
		if nLhs != 2 {
			return "", 0, -1
		}
		return "span", 1, -1
	case obj.Name() == "StartTrace" && recvIsNamed(obj, "obs/trace", "Collector"):
		if nLhs != 2 {
			return "", 0, -1
		}
		return "span", 1, -1
	}
	return "", 0, -1
}

// use classifications for a resource identifier.
type useClass int

const (
	useEscape useClass = iota
	useNeutral
	useDischarge
)

// classifyUse decides what one occurrence of the resource ident means.
// stack holds the ancestors of id, innermost last.
func classifyUse(id *ast.Ident, stack []ast.Node) (useClass, *ast.CallExpr) {
	parent := innermostNonParen(stack)
	switch p := parent.(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == id {
			return useDischarge, p // release()
		}
	case *ast.SelectorExpr:
		if ast.Unparen(p.X) != id {
			break
		}
		// A span method: End pairs the obligation, the other methods
		// (SetAttr, SetError, TraceID, ...) are neutral reads.
		if call, ok := grandparentCall(stack, p); ok {
			if p.Sel.Name == "End" {
				return useDischarge, call
			}
			return useNeutral, nil
		}
	case *ast.BinaryExpr:
		// sp == nil / sp != nil guards are how nil-safe span handles
		// are used; the branch refinement handles the semantics.
		if (p.Op == token.EQL || p.Op == token.NEQ) && (isNilIdent(p.X) || isNilIdent(p.Y)) {
			return useNeutral, nil
		}
	case *ast.AssignStmt:
		// Reassignment of the handle variable: the old obligation can
		// no longer be discharged through it, but the leak (if any)
		// still surfaces at the exits, so the occurrence is neutral.
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return useNeutral, nil
			}
		}
	}
	return useEscape, nil
}

// innermostNonParen returns the nearest ancestor that is not a
// ParenExpr.
func innermostNonParen(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); !ok {
			return stack[i]
		}
	}
	return nil
}

// grandparentCall reports whether sel is the callee of a CallExpr in
// stack (i.e. the occurrence is a method call, not a method value).
func grandparentCall(stack []ast.Node, sel *ast.SelectorExpr) (*ast.CallExpr, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ParenExpr, *ast.SelectorExpr:
			continue
		case *ast.CallExpr:
			if ast.Unparen(n.Fun) == sel {
				return n, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
	return nil, false
}

// nilCheckProves reports whether cond having evaluated to taken proves
// obj's nilness: a comparison against nil is definitive on both of its
// branches, so (err != nil) taken proves err non-nil (wantNil=false —
// the failure path, where the creator returned no resource) and
// (sp == nil) not-taken proves sp non-nil likewise.
func nilCheckProves(info *types.Info, cond ast.Expr, taken bool, obj types.Object, wantNil bool) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || obj == nil {
		return false
	}
	var idSide ast.Expr
	switch {
	case isNilIdent(be.X):
		idSide = be.Y
	case isNilIdent(be.Y):
		idSide = be.X
	default:
		return false
	}
	id, ok := ast.Unparen(idSide).(*ast.Ident)
	if !ok || objectOf(info, id) != obj {
		return false
	}
	if be.Op != token.EQL && be.Op != token.NEQ {
		return false
	}
	provenNil := (be.Op == token.EQL) == taken
	return provenNil == wantNil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// objectOf resolves an identifier through either Defs or Uses.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// shallowStmts visits the statements of body that belong to this
// function unit — nested function literals are skipped.
func shallowStmts(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		return f(n)
	})
}
