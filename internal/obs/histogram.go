package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Exemplar links one histogram observation to the trace that produced
// it, so a slow bucket on a dashboard resolves to a concrete stored
// trace at /debug/traces/{trace_id}.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free: one atomic add into the containing bucket, one into the
// total count and a CAS loop on the float64 sum. Snapshots taken
// concurrently with observations are not a consistent cut (count, sum
// and buckets may be a few observations apart), which is the standard
// scrape-time trade-off and fine for monitoring.
//
// Families registered with HistogramWithExemplars additionally retain
// the last exemplar-carrying observation per bucket (one atomic
// pointer swap; last-writer-wins is the standard exemplar semantics).
type Histogram struct {
	upper     []float64       // sorted finite upper bounds
	counts    []atomic.Uint64 // len(upper)+1; the last is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar]
	count     atomic.Uint64
	sumBits   atomic.Uint64
}

func newHistogram(upper []float64, exemplars bool) *Histogram {
	h := &Histogram{
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
	if exemplars {
		h.exemplars = make([]atomic.Pointer[Exemplar], len(upper)+1)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; falls through to +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when the family was
// registered with HistogramWithExemplars and traceID is non-empty,
// replaces the containing bucket's exemplar. An empty traceID (e.g.
// tracing disabled for the request) degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if h.exemplars == nil || traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
}

// ObserveSince records the seconds elapsed since start — the standard
// stage-timer idiom: defer h.ObserveSince(time.Now()) does not work
// (the argument is evaluated immediately), so call sites capture start
// first.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns the cumulative bucket view used by Gather.
func (h *Histogram) snapshot() (count uint64, sum float64, buckets []Bucket) {
	buckets = make([]Bucket, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		upper := math.Inf(1)
		if i < len(h.upper) {
			upper = h.upper[i]
		}
		buckets[i] = Bucket{Upper: upper, Count: cum}
		if h.exemplars != nil {
			buckets[i].Exemplar = h.exemplars[i].Load()
		}
	}
	return h.count.Load(), h.Sum(), buckets
}
