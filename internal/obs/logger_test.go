package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func testLogger(min Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := NewLogger(&b, min)
	l.now = func() time.Time { return time.Date(2026, 8, 5, 9, 0, 0, 0, time.UTC) }
	return l, &b
}

func TestLoggerFormat(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Info("listening", "addr", ":8080", "units", 30)
	want := `time=2026-08-05T09:00:00Z level=info msg=listening addr=:8080 units=30` + "\n"
	if got := b.String(); got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.Warn("write failed", "error", `broken pipe: x="y"`, "empty", "")
	got := b.String()
	for _, want := range []string{
		`msg="write failed"`,
		`error="broken pipe: x=\"y\""`,
		`empty=""`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	l, b := testLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := b.String()
	if strings.Contains(got, "level=debug") || strings.Contains(got, "level=info") {
		t.Errorf("below-threshold lines written: %q", got)
	}
	if !strings.Contains(got, "level=warn") || !strings.Contains(got, "level=error") {
		t.Errorf("threshold lines missing: %q", got)
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestLoggerWithAndOddPairs(t *testing.T) {
	l, b := testLogger(LevelInfo)
	l.With("component", "server").Info("up", "dangling")
	got := b.String()
	if !strings.Contains(got, "component=server") {
		t.Errorf("With field missing: %q", got)
	}
	if !strings.Contains(got, "dangling=!MISSING") {
		t.Errorf("odd pair marker missing: %q", got)
	}
}

func TestLoggerConcurrent(t *testing.T) {
	l, b := testLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("tick", "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "time=") || !strings.Contains(line, "msg=tick") {
			t.Fatalf("interleaved line: %q", line)
		}
	}
}
