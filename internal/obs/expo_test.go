package obs

import (
	"bufio"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func expoRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("http_requests_total", "Requests served.", "route", "status")
	c.With("/v1/vehicles", "2xx").Add(3)
	c.With("/v1/vehicles", "4xx").Inc()
	r.Gauge("in_flight", "In-flight requests.").With().Set(2)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.With().Observe(0.05)
	h.With().Observe(0.5)
	h.With().Observe(5)
	return r
}

func TestWriteTextFormat(t *testing.T) {
	var b strings.Builder
	if err := expoRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# HELP http_requests_total Requests served.",
		"# TYPE http_requests_total counter",
		`http_requests_total{route="/v1/vehicles",status="2xx"} 3`,
		`http_requests_total{route="/v1/vehicles",status="4xx"} 1`,
		"# HELP in_flight In-flight requests.",
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# HELP latency_seconds Latency.",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 5.55",
		"latency_seconds_count 3",
		"",
	}, "\n")
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// sampleLine matches one Prometheus text-format sample, with an
// optional OpenMetrics exemplar suffix on histogram buckets.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(NaN|[+-]?Inf|[+-]?[0-9.eE+-]+)( # \{trace_id="[^"]*"\} (NaN|[+-]?Inf|[+-]?[0-9.eE+-]+))?$`)

// parseExposition validates every line is a comment or a sample and
// returns the sample lines.
func parseExposition(t *testing.T, text string) []string {
	t.Helper()
	var samples []string
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("unparseable exposition line: %q", line)
			continue
		}
		samples = append(samples, line)
	}
	return samples
}

func TestHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	expoRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	if n := len(parseExposition(t, rec.Body.String())); n != 8 {
		t.Errorf("parsed %d samples, want 8", n)
	}
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "line\nbreak and \\slash", "q").With(`va"l\ue` + "\n").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`# HELP weird_total line\nbreak and \\slash`,
		`weird_total{q="va\"l\\ue\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
