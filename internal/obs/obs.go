// Package obs is the zero-dependency observability layer: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with Prometheus text-format exposition, and a leveled
// structured logger. It exists so the reproduction can measure itself:
// the paper's Section 4.5 treats per-algorithm training time as a
// first-class result, and the fleet-serving north star needs request
// telemetry before any performance claim can be checked.
//
// All hot-path operations (Inc, Add, Set, Observe) are lock-free
// atomics after the first lookup of a label child; registration and
// child creation take locks and are meant for init-time or first-use.
package obs

import (
	"net/http"
	"os"
	"time"
)

// Default is the process-wide registry. Library packages register
// their metrics here at init so binaries expose one coherent metric
// set without threading a registry through every API.
var Default = NewRegistry()

// defaultLogger writes structured key=value lines to stderr at Info.
var defaultLogger = NewLogger(os.Stderr, LevelInfo)

// DefaultLogger returns the process-wide leveled logger.
func DefaultLogger() *Logger { return defaultLogger }

// Handler returns the Prometheus text-format exposition handler for
// the Default registry, suitable for mounting at GET /metrics.
func Handler() http.Handler { return Default.Handler() }

// DurationBuckets are the default histogram bucket upper bounds for
// durations in seconds, spanning a microsecond (a baseline model fit)
// to several seconds (SVR at large w), roughly logarithmic.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
}

// SinceSeconds returns the elapsed wall-clock time since start in
// seconds, the unit every duration histogram in this package records.
func SinceSeconds(start time.Time) float64 { return time.Since(start).Seconds() }
