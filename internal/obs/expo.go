package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version this
// package writes.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler returns an http.Handler serving the registry in Prometheus
// text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		// Errors here mean the client went away; nothing to do.
		_ = r.WriteText(w)
	})
}

// WriteText writes every family in Prometheus text exposition format
// (HELP and TYPE comments, one sample line per time series, histograms
// as cumulative _bucket/_sum/_count series).
func (r *Registry) WriteText(w io.Writer) error {
	for _, fam := range r.Gather() {
		if err := writeFamily(w, fam); err != nil {
			return err
		}
	}
	return nil
}

func writeFamily(w io.Writer, fam Family) error {
	if fam.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); err != nil {
		return err
	}
	for _, s := range fam.Samples {
		if err := writeSample(w, fam, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, fam Family, s Sample) error {
	if fam.Type != TypeHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, renderLabels(s.Labels, nil), formatValue(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		le := Label{Name: "le", Value: formatUpper(b.Upper)}
		line := fmt.Sprintf("%s_bucket%s %d", fam.Name, renderLabels(s.Labels, &le), b.Count)
		if b.Exemplar != nil {
			// OpenMetrics exemplar syntax; Prometheus' text parser
			// tolerates it and dashboards resolve the trace ID against
			// /debug/traces/{id}.
			line += fmt.Sprintf(" # {trace_id=\"%s\"} %s", escapeLabel(b.Exemplar.TraceID), formatValue(b.Exemplar.Value))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.Name, renderLabels(s.Labels, nil), formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.Name, renderLabels(s.Labels, nil), s.Count)
	return err
}

// renderLabels renders {a="x",b="y"}, with an optional extra label
// (the histogram le) appended; empty label sets render as nothing.
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extra.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatUpper(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
