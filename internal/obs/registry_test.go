package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "help", "route")
	c.With("/a").Inc()
	c.With("/a").Add(2)
	c.With("/b").Inc()
	if got := c.With("/a").Value(); got != 3 {
		t.Errorf("counter /a = %d, want 3", got)
	}
	if got := c.With("/b").Value(); got != 1 {
		t.Errorf("counter /b = %d, want 1", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("in_flight", "help")
	g.With().Set(5)
	g.With().Add(2.5)
	g.With().Dec()
	if got := g.With().Value(); got != 6.5 {
		t.Errorf("gauge = %v, want 6.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.With().Observe(v)
	}
	if got := h.With().Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.With().Sum(), 102.65; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	s, ok := FindSample(r.Gather(), "latency")
	if !ok {
		t.Fatal("latency sample missing")
	}
	// Cumulative: <=0.1 holds 0.05 and 0.1; <=1 adds 0.5; <=10 adds 2;
	// +Inf adds 100.
	wantCum := []uint64{2, 3, 4, 5}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if s.Buckets[i].Count != want {
			t.Errorf("bucket %d cumulative = %d, want %d", i, s.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].Upper, 1) {
		t.Error("last bucket should be +Inf")
	}
}

func TestSampleQuantileAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "help", []float64{1, 2, 4})
	// 10 observations uniform in (0, 1]: the median interpolates to
	// the middle of the first bucket.
	for i := 0; i < 10; i++ {
		h.With().Observe(0.5)
	}
	s, _ := FindSample(r.Gather(), "q")
	if got := s.Quantile(0.5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("p50 = %v, want 0.5", got)
	}
	if got := s.Mean(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mean = %v, want 0.5", got)
	}
	if got := (Sample{}).Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestRegisterIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help", "x")
	b := r.Counter("dup_total", "help", "x")
	a.With("1").Inc()
	if got := b.With("1").Value(); got != 1 {
		t.Errorf("re-registration returned a different family (value %d)", got)
	}
	assertPanics(t, "type change", func() { r.Gauge("dup_total", "help", "x") })
	assertPanics(t, "label change", func() { r.Counter("dup_total", "help", "y") })
	assertPanics(t, "label arity", func() { a.With("1", "2").Inc() })
	assertPanics(t, "empty name", func() { r.Counter("", "help") })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", "worker")
	g := r.Gauge("g", "help")
	h := r.Histogram("h", "help", []float64{0.5})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w%2))
			for i := 0; i < per; i++ {
				c.With(label).Inc()
				g.With().Add(1)
				h.With().Observe(0.25)
				_ = r.Gather() // concurrent scrapes must be safe too
			}
		}(w)
	}
	wg.Wait()
	total := c.With("a").Value() + c.With("b").Value()
	if total != workers*per {
		t.Errorf("counter total = %d, want %d", total, workers*per)
	}
	if got := g.With().Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.With().Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}
