package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int

// The log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Logger writes leveled key=value lines:
//
//	time=2026-08-05T09:00:00Z level=info msg="listening" addr=:8080
//
// Loggers derived with With share the destination and its mutex, so
// one Logger tree is safe for concurrent use.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	fields string // pre-rendered " k=v" pairs appended to every line
	now    func() time.Time
}

// NewLogger returns a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: new(sync.Mutex), w: w, min: min, now: time.Now}
}

// With returns a child logger whose lines carry the extra key/value
// pairs after msg. Keys and values alternate, as in Info.
func (l *Logger) With(kv ...any) *Logger {
	child := *l
	child.fields = l.fields + renderPairs(kv)
	return &child
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool { return level >= l.min }

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("time=")
	b.WriteString(l.now().UTC().Format(time.RFC3339))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	b.WriteString(quote(msg))
	b.WriteString(l.fields)
	b.WriteString(renderPairs(kv))
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	// A failed write to the log sink has no recovery channel.
	_, _ = io.WriteString(l.w, b.String())
}

// renderPairs renders alternating key/value arguments as " k=v"; a
// trailing key without a value renders with the marker value !MISSING.
func renderPairs(kv []any) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "!MISSING"
		if i+1 < len(kv) {
			val = fmt.Sprint(kv[i+1])
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(quote(val))
	}
	return b.String()
}

// quote wraps values that contain whitespace, quotes or '=' in Go
// string-literal quoting; bare tokens pass through unchanged.
func quote(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
