package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType discriminates the exposition families.
type MetricType int

// The supported metric types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String implements fmt.Stringer with the Prometheus TYPE keywords.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds named metric families. All methods are safe for
// concurrent use. Registering the same name twice returns the existing
// family when type and label names match, and panics otherwise — a
// name collision is a programming error, caught at init.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with a fixed label-name schema and one
// child time series per distinct label-value tuple.
type family struct {
	name      string
	help      string
	typ       MetricType
	labels    []string
	buckets   []float64 // histogram upper bounds, sorted, without +Inf
	exemplars bool      // histogram children retain per-bucket exemplars

	mu       sync.RWMutex
	children map[string]any
}

// labelKey joins label values with a separator that cannot appear in
// practice-safe label values (0x1f, the ASCII unit separator).
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

func (r *Registry) register(name, help string, typ MetricType, buckets []float64, labels []string, exemplars bool) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) || f.exemplars != exemplars {
			panic(fmt.Sprintf("obs: metric %q re-registered with different type, labels or exemplar setting", name))
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		typ:       typ,
		labels:    append([]string(nil), labels...),
		buckets:   append([]float64(nil), buckets...),
		exemplars: exemplars,
		children:  make(map[string]any),
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the metric for one label-value tuple, creating it on
// first use. The fast path is a read-locked map hit.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make() //lint:allow lockhold the metric constructors passed here are pure in-memory allocation, never IO
	f.children[key] = c
	return c
}

// Counter registers (or fetches) a monotonically increasing counter
// family with the given label names.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, nil, labels, false)}
}

// Gauge registers (or fetches) a gauge family — a value that can go up
// and down, e.g. in-flight requests.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, nil, labels, false)}
}

// Histogram registers (or fetches) a fixed-bucket histogram family.
// buckets are upper bounds; a final +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	return &HistogramVec{r.register(name, help, TypeHistogram, buckets, labels, false)}
}

// HistogramWithExemplars registers (or fetches) a histogram family
// whose buckets additionally retain the last ObserveExemplar trace ID,
// exposed as OpenMetrics-style exemplars in the text format so a slow
// bucket links directly to a stored trace. The same name must always
// be registered with the same exemplar setting.
func (r *Registry) HistogramWithExemplars(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DurationBuckets
	}
	return &HistogramVec{r.register(name, help, TypeHistogram, buckets, labels, true)}
}

// CounterVec is a counter family; With resolves one time series.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first
// use. Value count must match the registered label names.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return new(Counter) }).(*Counter)
}

// Counter is a monotonically increasing uint64.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// GaugeVec is a gauge family; With resolves one time series.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// Gauge is an atomically updated float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (negative to decrease) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramVec is a histogram family; With resolves one time series.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	f := v.f
	return f.child(labelValues, func() any { return newHistogram(f.buckets, f.exemplars) }).(*Histogram)
}

// Label is one exposition label name/value pair.
type Label struct{ Name, Value string }

// Bucket is one cumulative histogram bucket; Upper is math.Inf(1) for
// the implicit +Inf bucket. Exemplar is the bucket's last
// exemplar-carrying observation, nil for families registered without
// exemplars or buckets that have not seen one.
type Bucket struct {
	Upper    float64
	Count    uint64
	Exemplar *Exemplar
}

// Sample is a point-in-time reading of one time series. Value carries
// counters (as float) and gauges; Count, Sum and Buckets carry
// histograms.
type Sample struct {
	Labels  []Label
	Value   float64
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Mean returns Sum/Count for histogram samples, 0 when empty.
func (s Sample) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram sample
// by linear interpolation within the containing bucket, the same
// estimate Prometheus' histogram_quantile computes. Observations in
// the +Inf bucket clamp to the largest finite bound.
func (s Sample) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	prevUpper, prevCount := 0.0, uint64(0)
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			if math.IsInf(b.Upper, 1) || b.Count == prevCount {
				return prevUpper
			}
			frac := (rank - float64(prevCount)) / float64(b.Count-prevCount)
			return prevUpper + (b.Upper-prevUpper)*frac
		}
		prevUpper, prevCount = b.Upper, b.Count
	}
	return prevUpper
}

// Family is a point-in-time reading of one metric family.
type Family struct {
	Name    string
	Help    string
	Type    MetricType
	Samples []Sample
}

// Gather snapshots every family, sorted by name; samples are sorted by
// label values so output is deterministic.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.Unlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f.gather())
	}
	return out
}

func (f *family) gather() Family {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fam := Family{Name: f.name, Help: f.help, Type: f.typ, Samples: make([]Sample, 0, len(keys))}
	for _, key := range keys {
		var s Sample
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, "\x1f")
		}
		for i, name := range f.labels {
			s.Labels = append(s.Labels, Label{Name: name, Value: values[i]})
		}
		switch c := f.children[key].(type) {
		case *Counter:
			s.Value = float64(c.Value())
		case *Gauge:
			s.Value = c.Value()
		case *Histogram:
			s.Count, s.Sum, s.Buckets = c.snapshot()
		}
		fam.Samples = append(fam.Samples, s)
	}
	f.mu.RUnlock()
	return fam
}

// FindSample returns the sample of family name whose labels exactly
// match the given name/value pairs, for tests and report tables.
func FindSample(families []Family, name string, labels ...Label) (Sample, bool) {
	for _, fam := range families {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Samples {
			if labelsMatch(s.Labels, labels) {
				return s, true
			}
		}
	}
	return Sample{}, false
}

func labelsMatch(have, want []Label) bool {
	if len(have) != len(want) {
		return false
	}
	for i := range have {
		if have[i] != want[i] {
			return false
		}
	}
	return true
}
