package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// keepAll returns a collector that stores every completed trace.
func keepAll(t *testing.T) *Collector {
	t.Helper()
	return NewCollector(Options{SampleRate: 1, Seed: 1})
}

func TestStartWithoutTraceIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "orphan")
	if sp != nil {
		t.Fatal("Start without an active trace returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without an active trace derived a new context")
	}
	// Every nil-span method must be callable.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetError(errors.New("boom"))
	sp.End()
	if id := sp.TraceID(); id != "" {
		t.Fatalf("nil span TraceID = %q", id)
	}
}

func TestSpanNesting(t *testing.T) {
	c := keepAll(t)
	ctx, root := c.StartTrace(context.Background(), "request")
	ctx1, child := Start(ctx, "cache")
	_, grand := Start(ctx1, "fit")
	grand.SetAttr("algorithm", "SVR")
	grand.End()
	child.End()
	_, sibling := Start(ctx, "predict")
	sibling.End()
	root.End()

	td, ok := c.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if td.Root != "request" || len(td.Spans) != 4 {
		t.Fatalf("root %q, %d spans; want request, 4", td.Root, len(td.Spans))
	}
	byName := map[string]SpanData{}
	for _, sd := range td.Spans {
		byName[sd.Name] = sd
	}
	if byName["request"].ParentID != "" {
		t.Errorf("root has parent %q", byName["request"].ParentID)
	}
	if byName["cache"].ParentID != byName["request"].SpanID {
		t.Errorf("cache parent = %q, want root %q", byName["cache"].ParentID, byName["request"].SpanID)
	}
	if byName["fit"].ParentID != byName["cache"].SpanID {
		t.Errorf("fit parent = %q, want cache %q", byName["fit"].ParentID, byName["cache"].SpanID)
	}
	if byName["predict"].ParentID != byName["request"].SpanID {
		t.Errorf("predict parent = %q, want root %q", byName["predict"].ParentID, byName["request"].SpanID)
	}
	if got := byName["fit"].Attrs; len(got) != 1 || got[0] != (Attr{Key: "algorithm", Value: "SVR"}) {
		t.Errorf("fit attrs = %v", got)
	}
	for _, sd := range td.Spans {
		if sd.Duration < 0 || sd.Offset < 0 {
			t.Errorf("span %s has negative timing: offset %v duration %v", sd.Name, sd.Offset, sd.Duration)
		}
	}
	if td.Duration < byName["fit"].Duration {
		t.Errorf("root duration %v shorter than child %v", td.Duration, byName["fit"].Duration)
	}
}

func TestTraceIDsDeterministicUnderSeed(t *testing.T) {
	ids := func(seed int64) []string {
		c := NewCollector(Options{SampleRate: 1, Seed: seed})
		var out []string
		for i := 0; i < 5; i++ {
			_, root := c.StartTrace(context.Background(), "r")
			out = append(out, root.TraceID())
			root.End()
		}
		return out
	}
	a, b := ids(42), ids(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace ID %d differs across equally seeded collectors: %s vs %s", i, a[i], b[i])
		}
	}
	other := ids(43)
	if a[0] == other[0] {
		t.Fatalf("different seeds produced the same first trace ID %s", a[0])
	}
	for _, id := range a {
		if len(id) != 16 {
			t.Fatalf("trace ID %q is not 16 hex digits", id)
		}
	}
}

func TestTailSamplingPolicy(t *testing.T) {
	// Negative rate: only errors and slow traces survive.
	c := NewCollector(Options{SampleRate: -1, SlowThreshold: 50 * time.Millisecond})

	_, fast := c.StartTrace(context.Background(), "fast-clean")
	fast.End()
	if _, ok := c.Get(fast.TraceID()); ok {
		t.Fatal("fast, clean trace kept despite negative sample rate")
	}

	ctx, errRoot := c.StartTrace(context.Background(), "errored")
	_, child := Start(ctx, "inner")
	child.SetError(errors.New("fit failed"))
	child.End()
	errRoot.End()
	td, ok := c.Get(errRoot.TraceID())
	if !ok {
		t.Fatal("errored trace dropped; errors must always be kept")
	}
	if td.Decision != DecisionError || td.Err != "fit failed" {
		t.Fatalf("decision %q err %q, want error/fit failed", td.Decision, td.Err)
	}

	_, slow := c.StartTrace(context.Background(), "slow")
	time.Sleep(60 * time.Millisecond)
	slow.End()
	td, ok = c.Get(slow.TraceID())
	if !ok {
		t.Fatal("slow trace dropped; traces over the threshold must always be kept")
	}
	if td.Decision != DecisionSlow {
		t.Fatalf("decision %q, want slow", td.Decision)
	}

	// Rate 1: everything is kept, fast and clean included.
	keep := NewCollector(Options{SampleRate: 1})
	_, r := keep.StartTrace(context.Background(), "fast-clean")
	r.End()
	td, ok = keep.Get(r.TraceID())
	if !ok {
		t.Fatal("trace dropped at sample rate 1")
	}
	if td.Decision != DecisionSampled {
		t.Fatalf("decision %q, want sampled", td.Decision)
	}
}

func TestRingBufferEvictionOrder(t *testing.T) {
	c := NewCollector(Options{Capacity: 3, SampleRate: 1})
	var ids []string
	for i := 0; i < 5; i++ {
		_, root := c.StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		ids = append(ids, root.TraceID())
		root.End()
	}
	if c.Len() != 3 {
		t.Fatalf("stored %d traces, capacity 3", c.Len())
	}
	for _, old := range ids[:2] {
		if _, ok := c.Get(old); ok {
			t.Errorf("oldest trace %s survived eviction", old)
		}
	}
	got := c.Traces()
	if len(got) != 3 {
		t.Fatalf("Traces returned %d entries", len(got))
	}
	// Newest first: t4, t3, t2.
	for i, want := range []string{"t4", "t3", "t2"} {
		if got[i].Root != want {
			t.Errorf("Traces()[%d] = %s, want %s", i, got[i].Root, want)
		}
	}
}

func TestConcurrentSpans(t *testing.T) {
	c := keepAll(t)
	ctx, root := c.StartTrace(context.Background(), "fanout")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx2, sp := Start(ctx, "job")
				sp.SetAttrInt("worker", w)
				_, leaf := Start(ctx2, "leaf")
				leaf.End()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	td, ok := c.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if want := 1 + workers*50*2; len(td.Spans) != want {
		t.Fatalf("stored %d spans, want %d", len(td.Spans), want)
	}
	seen := map[string]bool{}
	for _, sd := range td.Spans {
		if seen[sd.SpanID] {
			t.Fatalf("duplicate span ID %s", sd.SpanID)
		}
		seen[sd.SpanID] = true
	}
}

func TestSpanAfterRootEndIsDropped(t *testing.T) {
	c := keepAll(t)
	ctx, root := c.StartTrace(context.Background(), "r")
	_, late := Start(ctx, "late")
	root.End()
	late.End() // after finalization: must not panic, must not mutate the stored trace
	td, ok := c.Get(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if len(td.Spans) != 1 {
		t.Fatalf("late span leaked into the finalized trace: %d spans", len(td.Spans))
	}
}

func TestEndIdempotent(t *testing.T) {
	c := keepAll(t)
	_, root := c.StartTrace(context.Background(), "r")
	root.End()
	root.End()
	if c.Len() != 1 {
		t.Fatalf("double End stored %d traces", c.Len())
	}
}

func TestWaterfallRendering(t *testing.T) {
	c := keepAll(t)
	ctx, root := c.StartTrace(context.Background(), "GET /v1/vehicles/{id}/forecast")
	ctx1, lookup := Start(ctx, "cache.lookup")
	lookup.SetAttr("outcome", "miss")
	_, fit := Start(ctx1, "model.fit")
	fit.SetError(errors.New("singular matrix"))
	fit.End()
	lookup.End()
	root.End()

	td, _ := c.Get(root.TraceID())
	w := Waterfall(td)
	for _, want := range []string{
		"trace " + root.TraceID(),
		"kept: error",
		"cache.lookup outcome=miss",
		"model.fit",
		`!error="singular matrix"`,
		"3 spans",
	} {
		if !strings.Contains(w, want) {
			t.Errorf("waterfall missing %q:\n%s", want, w)
		}
	}
	// Depth indentation: model.fit sits two levels under the root.
	for _, line := range strings.Split(w, "\n") {
		if strings.Contains(line, "model.fit") && !strings.Contains(line, "    model.fit") {
			t.Errorf("model.fit not indented to depth 2: %q", line)
		}
	}
}

func TestNilCollector(t *testing.T) {
	var c *Collector
	ctx, sp := c.StartTrace(context.Background(), "r")
	if sp != nil {
		t.Fatal("nil collector produced a span")
	}
	if c.Len() != 0 || c.Traces() != nil {
		t.Fatal("nil collector holds traces")
	}
	if _, ok := c.Get("x"); ok {
		t.Fatal("nil collector resolved a trace")
	}
	_ = ctx
}
