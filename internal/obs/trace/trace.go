// Package trace is the request-scoped counterpart of package obs: a
// zero-dependency tracing subsystem whose spans propagate through
// context.Context, nest parent→child, carry attributes and errors, and
// measure monotonic durations. Completed traces land in a Collector —
// a bounded ring buffer behind a tail sampler that always keeps
// errored and slow traces — and are served as JSON summaries and text
// waterfalls at GET /debug/traces.
//
// The aggregate stage histograms of package obs answer "are fits
// slow"; a trace answers "which vehicle, which window, which config".
// Trace IDs are drawn from internal/randx, so a seeded Collector emits
// a reproducible ID stream and tests can assert on exact IDs.
//
// When no trace is active — no Collector configured, or the request
// was not started under Collector.StartTrace — every function in the
// span API is an allocation-free no-op: Start returns its context
// unchanged with a nil *Span, and all *Span methods are nil-safe.
// BenchmarkSpanDisabled pins this at 0 allocs/op.
package trace

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute: a low-cardinality key with a
// request-specific value (vehicle ID, algorithm, cache outcome).
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanData is one completed span as stored in a trace: identity,
// position in the tree, offset from the trace start and monotonic
// duration.
type SpanData struct {
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Name     string        `json:"name"`
	Offset   time.Duration `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// spanKey carries the active *Span through a context. The zero-size
// key boxes to a static interface value, so the disabled-path
// ctx.Value lookup does not allocate.
type spanKey struct{}

// FromContext returns the context's active span, or nil when the
// context carries none.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Start opens a child span under the context's active span and returns
// a derived context carrying it. When the context has no active span
// (tracing disabled, or the caller is not under StartTrace) it returns
// ctx unchanged and a nil *Span without allocating — the instrumented
// code needs no enabled-check of its own.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := &Span{
		tr:       parent.tr,
		name:     name,
		spanID:   parent.tr.nextSpanID(),
		parentID: parent.spanID,
		start:    time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Span is one in-progress operation. All methods are safe on a nil
// receiver (the disabled path) and safe for concurrent use.
type Span struct {
	tr       *activeTrace
	name     string
	spanID   string
	parentID string
	start    time.Time

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// TraceID returns the ID of the trace this span belongs to, "" on a
// nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.traceID
}

// SetAttr attaches a key/value attribute. Later values for the same
// key append rather than replace; the waterfall prints them in order.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// SetAttrInt attaches an integer attribute.
func (s *Span) SetAttrInt(key string, value int) {
	s.SetAttr(key, strconv.Itoa(value))
}

// SetError marks the span failed. A nil err is ignored, so call sites
// can record unconditionally. An errored span forces its whole trace
// through the tail sampler's always-keep path.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	if !s.ended && s.err == "" {
		s.err = err.Error()
	}
	s.mu.Unlock()
}

// End completes the span with its monotonic duration and hands it to
// the trace. Ending the root span finalizes the trace and submits it
// to the collector's tail sampler; spans ended after their root are
// dropped. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs, errMsg := s.attrs, s.err
	s.mu.Unlock()
	s.tr.finish(SpanData{
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Offset:   s.start.Sub(s.tr.start),
		Duration: dur,
		Attrs:    attrs,
		Err:      errMsg,
	}, s.parentID == "")
}

// activeTrace accumulates the finished spans of one trace until its
// root span ends. Spans may finish concurrently (fleet fan-outs end
// per-vehicle spans on pool workers), so the accumulator is locked.
type activeTrace struct {
	c       *Collector
	traceID string
	start   time.Time // monotonic anchor for span offsets
	wall    time.Time // wall-clock start for display
	nextID  atomic.Uint64

	mu    sync.Mutex
	spans []SpanData
	err   string // first span error, drives the keep-errors policy
	done  bool
}

// nextSpanID hands out span IDs from a per-trace counter: cheap,
// lock-free and unique within the trace. Assignment order under
// concurrency follows scheduling, which is why determinism is claimed
// for trace IDs (drawn from the seeded collector stream), not span
// IDs.
func (a *activeTrace) nextSpanID() string {
	return strconv.FormatUint(a.nextID.Add(1), 10)
}

func (a *activeTrace) finish(sd SpanData, root bool) {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.spans = append(a.spans, sd)
	if sd.Err != "" && a.err == "" {
		a.err = sd.Err
	}
	if !root {
		a.mu.Unlock()
		return
	}
	a.done = true
	spans, errMsg := a.spans, a.err
	a.mu.Unlock()
	a.c.submit(a, sd.Name, spans, sd.Duration, errMsg)
}
