package trace

import (
	"context"
	"testing"
)

// TestSpanDisabledAllocFree is the merge gate behind
// BenchmarkSpanDisabled: with no active trace, the span API must not
// allocate at all — the serving and evaluation hot paths call it
// unconditionally.
func TestSpanDisabledAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		ctx2, sp := Start(ctx, "disabled")
		sp.SetAttr("k", "v")
		sp.SetError(nil)
		sp.End()
		_ = ctx2
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkSpanDisabled measures the no-collector fast path: a Start
// that finds no active span plus the nil-safe method calls.
// BENCH_trace.json records the result; the CI smoke run plus
// TestSpanDisabledAllocFree keep it at 0 allocs/op.
func BenchmarkSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx2, sp := Start(ctx, "disabled")
		sp.SetAttr("k", "v")
		sp.End()
		_ = ctx2
	}
}

// BenchmarkSpanEnabled is the honest counterpart: one minimal trace
// (root + attributed child) per iteration, dropped by the sampler so
// the ring buffer stays out of the measurement.
func BenchmarkSpanEnabled(b *testing.B) {
	c := NewCollector(Options{SampleRate: -1, Capacity: 1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, root := c.StartTrace(context.Background(), "bench")
		_, sp := Start(ctx, "child")
		sp.SetAttr("k", "v")
		sp.End()
		root.End()
	}
}
