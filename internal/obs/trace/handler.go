package trace

import (
	"encoding/json"
	"net/http"
	"time"
)

// summary is one row of the GET /debug/traces listing.
type summary struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Decision   string    `json:"decision"`
	Err        string    `json:"error,omitempty"`
}

// Handler serves the trace store on the debug listener:
//
//	GET /debug/traces          JSON list of stored traces, newest first
//	GET /debug/traces/{id}     text waterfall of one trace
//	GET /debug/traces/{id}?format=json   the full TraceData
//
// Like pprof, this exposes operational internals (vehicle IDs, query
// shapes); mount it on the private debug address, not the API one.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/traces", c.serveList)
	mux.HandleFunc("GET /debug/traces/{id}", c.serveTrace)
	return mux
}

func (c *Collector) serveList(w http.ResponseWriter, _ *http.Request) {
	traces := c.Traces()
	out := make([]summary, 0, len(traces))
	for _, td := range traces {
		out = append(out, summary{
			TraceID:    td.TraceID,
			Root:       td.Root,
			Start:      td.Start,
			DurationMS: td.Duration.Seconds() * 1e3,
			Spans:      len(td.Spans),
			Decision:   td.Decision,
			Err:        td.Err,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	// The header is on the wire; an encode failure has no recovery.
	_ = json.NewEncoder(w).Encode(out)
}

func (c *Collector) serveTrace(w http.ResponseWriter, r *http.Request) {
	td, ok := c.Get(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown trace (dropped by sampling, evicted, or never seen)", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(td)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(Waterfall(td)))
}
