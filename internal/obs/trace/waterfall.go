package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// waterfallBarWidth is the character width of the timeline bars.
const waterfallBarWidth = 40

// Waterfall renders one stored trace as a text waterfall: a header
// line, then one line per span in tree order — timeline bar, duration,
// name indented by depth, attributes and any error. Bar positions are
// proportional to each span's offset and duration within the trace.
func Waterfall(td *TraceData) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s · %s · %d spans · kept: %s\n",
		td.TraceID, td.Root, fmtDur(td.Duration), len(td.Spans), td.Decision)
	if td.Err != "" {
		fmt.Fprintf(&b, "error: %s\n", td.Err)
	}
	children := map[string][]SpanData{}
	for _, sd := range td.Spans {
		children[sd.ParentID] = append(children[sd.ParentID], sd)
	}
	for _, sibs := range children {
		sort.SliceStable(sibs, func(i, j int) bool {
			if sibs[i].Offset != sibs[j].Offset {
				return sibs[i].Offset < sibs[j].Offset
			}
			return spanOrd(sibs[i].SpanID) < spanOrd(sibs[j].SpanID)
		})
	}
	total := td.Duration
	if total <= 0 {
		total = 1 // degenerate trace; bars collapse to the left edge
	}
	var walk func(parentID string, depth int)
	walk = func(parentID string, depth int) {
		for _, sd := range children[parentID] {
			writeSpanLine(&b, sd, depth, total)
			walk(sd.SpanID, depth+1)
		}
	}
	walk("", 0)
	return b.String()
}

// spanOrd orders span IDs numerically (they are per-trace counters).
func spanOrd(id string) uint64 {
	n, err := strconv.ParseUint(id, 10, 64)
	if err != nil {
		return ^uint64(0)
	}
	return n
}

func writeSpanLine(b *strings.Builder, sd SpanData, depth int, total time.Duration) {
	b.WriteString(" [")
	b.WriteString(bar(sd.Offset, sd.Duration, total))
	b.WriteString("] ")
	fmt.Fprintf(b, "%10s  ", fmtDur(sd.Duration))
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(sd.Name)
	for _, a := range sd.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Value)
	}
	if sd.Err != "" {
		fmt.Fprintf(b, " !error=%q", sd.Err)
	}
	b.WriteByte('\n')
}

// bar renders a fixed-width timeline: '=' over the span's [offset,
// offset+duration) window, spaces elsewhere. Every span paints at
// least one cell so instant spans stay visible.
func bar(offset, dur, total time.Duration) string {
	from := int(int64(waterfallBarWidth) * int64(offset) / int64(total))
	to := int(int64(waterfallBarWidth) * int64(offset+dur) / int64(total))
	if from > waterfallBarWidth-1 {
		from = waterfallBarWidth - 1
	}
	if to <= from {
		to = from + 1
	}
	if to > waterfallBarWidth {
		to = waterfallBarWidth
	}
	var cells [waterfallBarWidth]byte
	for i := range cells {
		switch {
		case i >= from && i < to:
			cells[i] = '='
		default:
			cells[i] = ' '
		}
	}
	return string(cells[:])
}

// fmtDur renders a duration in milliseconds with microsecond
// precision, the scale of every span in this system.
func fmtDur(d time.Duration) string {
	return strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 3, 64) + "ms"
}
