package trace

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"vup/internal/obs"
	"vup/internal/randx"
)

// Tail-sampler telemetry on the process-wide registry, next to the
// metrics the traces explain.
var (
	tracesKept = obs.Default.Counter(
		"traces_kept_total",
		"Completed traces kept by the tail sampler, by decision (error, slow, sampled).",
		"decision")
	tracesDropped = obs.Default.Counter(
		"traces_dropped_total",
		"Completed traces dropped by the tail sampler.")
	traceStoreEntries = obs.Default.Gauge(
		"trace_store_entries",
		"Traces currently held in the ring buffer behind /debug/traces.")
)

// The tail sampler's keep decisions, recorded on each stored trace.
const (
	DecisionError   = "error"   // a span recorded an error
	DecisionSlow    = "slow"    // root duration reached SlowThreshold
	DecisionSampled = "sampled" // probabilistic keep of a fast, clean trace
)

// TraceData is one completed, stored trace.
type TraceData struct {
	TraceID string `json:"trace_id"`
	// Root is the root span's name (e.g. "GET /v1/vehicles/{id}/forecast").
	Root string `json:"root"`
	// Start is the wall-clock trace start; span offsets and Duration
	// are monotonic.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Err is the first error any span recorded, "" when clean.
	Err string `json:"error,omitempty"`
	// Decision is why the tail sampler kept this trace.
	Decision string `json:"decision"`
	// Spans are sorted by offset (ties by span ID), root first.
	Spans []SpanData `json:"spans"`
}

// Options configures a Collector. Zero fields take the documented
// defaults; to keep every trace set SampleRate to 1, to keep only
// errored and slow traces set it negative.
type Options struct {
	// Capacity bounds the ring buffer of stored traces (default 128).
	Capacity int
	// SlowThreshold is the root latency at or above which a trace is
	// always kept (default 100ms).
	SlowThreshold time.Duration
	// SampleRate is the probability of keeping a fast, error-free
	// trace (default 0.1; values >= 1 keep everything, negative values
	// keep nothing beyond errors and slow traces).
	SampleRate float64
	// Seed seeds the randx stream behind trace IDs and sampling
	// decisions (default 1). Equal seeds give identical ID sequences.
	Seed int64
}

// Collector owns ID generation, the tail-sampling policy and the
// bounded ring buffer of kept traces. All methods are safe for
// concurrent use; a nil *Collector disables tracing entirely.
type Collector struct {
	slow time.Duration
	rate float64

	mu    sync.Mutex
	rng   *randx.RNG // trace IDs + sampling draws
	buf   []*TraceData
	head  int // index of the oldest stored trace
	count int
}

// NewCollector builds a collector with the given options.
func NewCollector(o Options) *Collector {
	if o.Capacity <= 0 {
		o.Capacity = 128
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	if o.SampleRate == 0 {
		o.SampleRate = 0.1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return &Collector{
		slow: o.SlowThreshold,
		rate: o.SampleRate,
		rng:  randx.New(o.Seed),
		buf:  make([]*TraceData, o.Capacity),
	}
}

// StartTrace opens a root span and returns a context carrying it;
// Start calls below that context create its children. On a nil
// collector it returns ctx unchanged and a nil *Span.
func (c *Collector) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if c == nil {
		return ctx, nil
	}
	now := time.Now()
	tr := &activeTrace{c: c, traceID: c.newTraceID(), start: now, wall: now}
	s := &Span{tr: tr, name: name, spanID: tr.nextSpanID(), start: now}
	return context.WithValue(ctx, spanKey{}, s), s
}

// newTraceID draws a 64-bit ID from the seeded stream, rendered as 16
// hex digits.
func (c *Collector) newTraceID() string {
	c.mu.Lock()
	id := c.rng.Int63()
	c.mu.Unlock()
	return fmt.Sprintf("%016x", uint64(id))
}

// submit runs the tail-sampling policy on one completed trace and
// stores it in the ring buffer when kept: errors always, slow roots
// always, the rest with probability SampleRate.
func (c *Collector) submit(a *activeTrace, root string, spans []SpanData, dur time.Duration, errMsg string) {
	c.mu.Lock()
	decision := ""
	switch {
	case errMsg != "":
		decision = DecisionError
	case dur >= c.slow:
		decision = DecisionSlow
	case c.rng.Float64() < c.rate:
		decision = DecisionSampled
	}
	if decision == "" {
		c.mu.Unlock()
		tracesDropped.With().Inc()
		return
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Offset < spans[j].Offset })
	td := &TraceData{
		TraceID:  a.traceID,
		Root:     root,
		Start:    a.wall,
		Duration: dur,
		Err:      errMsg,
		Decision: decision,
		Spans:    spans,
	}
	if c.count < len(c.buf) {
		c.buf[(c.head+c.count)%len(c.buf)] = td
		c.count++
	} else {
		// Full: overwrite the oldest and advance the ring.
		c.buf[c.head] = td
		c.head = (c.head + 1) % len(c.buf)
	}
	entries := c.count
	c.mu.Unlock()
	tracesKept.With(decision).Inc()
	traceStoreEntries.With().Set(float64(entries))
}

// Traces snapshots the stored traces, newest first.
func (c *Collector) Traces() []*TraceData {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*TraceData, 0, c.count)
	for i := c.count - 1; i >= 0; i-- {
		out = append(out, c.buf[(c.head+i)%len(c.buf)])
	}
	return out
}

// Get returns the stored trace with the given ID.
func (c *Collector) Get(traceID string) (*TraceData, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < c.count; i++ {
		if td := c.buf[(c.head+i)%len(c.buf)]; td.TraceID == traceID {
			return td, true
		}
	}
	return nil, false
}

// Len returns the number of stored traces.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}
