package obs

import (
	"strings"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithExemplars("latency_seconds", "Latency.", []float64{0.1, 1}, "route")
	series := h.With("/v1/vehicles")
	series.ObserveExemplar(0.05, "00000000000000aa")
	series.ObserveExemplar(0.5, "00000000000000bb")
	series.ObserveExemplar(0.7, "00000000000000cc") // same bucket: last writer wins
	series.Observe(5)                               // +Inf bucket, no exemplar

	fams := r.Gather()
	s, ok := FindSample(fams, "latency_seconds", Label{Name: "route", Value: "/v1/vehicles"})
	if !ok {
		t.Fatal("sample not found")
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("bucket count %d", len(s.Buckets))
	}
	if e := s.Buckets[0].Exemplar; e == nil || e.TraceID != "00000000000000aa" || e.Value != 0.05 {
		t.Errorf("bucket 0 exemplar = %+v", e)
	}
	if e := s.Buckets[1].Exemplar; e == nil || e.TraceID != "00000000000000cc" {
		t.Errorf("bucket 1 exemplar = %+v, want last writer cc", e)
	}
	if e := s.Buckets[2].Exemplar; e != nil {
		t.Errorf("+Inf bucket has exemplar %+v without an observation", e)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`latency_seconds_bucket{route="/v1/vehicles",le="0.1"} 1 # {trace_id="00000000000000aa"} 0.05`,
		`latency_seconds_bucket{route="/v1/vehicles",le="1"} 3 # {trace_id="00000000000000cc"} 0.7`,
		`latency_seconds_bucket{route="/v1/vehicles",le="+Inf"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestExemplarEmptyTraceIDDegradesToObserve(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramWithExemplars("latency_seconds", "Latency.", []float64{1}).With()
	h.ObserveExemplar(0.5, "")
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	_, _, buckets := h.snapshot()
	for _, b := range buckets {
		if b.Exemplar != nil {
			t.Fatalf("empty trace ID stored exemplar %+v", b.Exemplar)
		}
	}
}

func TestPlainHistogramIgnoresExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{1}).With()
	h.ObserveExemplar(0.5, "00000000000000aa") // family registered without exemplars
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	_, _, buckets := h.snapshot()
	for _, b := range buckets {
		if b.Exemplar != nil {
			t.Fatalf("plain histogram stored exemplar %+v", b.Exemplar)
		}
	}
}

func TestExemplarMismatchedReregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("latency_seconds", "Latency.", []float64{1})
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with exemplars did not panic")
		}
	}()
	r.HistogramWithExemplars("latency_seconds", "Latency.", []float64{1})
}
