package obs

import "context"

// loggerKey carries a request-scoped *Logger through a context.
type loggerKey struct{}

// IntoContext returns a context carrying l, so request handlers and
// the pipeline below them log with the request's bound fields
// (trace_id, vehicle) without threading a logger through every call. A
// nil l returns ctx unchanged.
func IntoContext(ctx context.Context, l *Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// FromContext returns the context's request-scoped logger, falling
// back to the process-wide default so callers never need a nil check.
func FromContext(ctx context.Context) *Logger {
	if l, ok := ctx.Value(loggerKey{}).(*Logger); ok {
		return l
	}
	return defaultLogger
}
