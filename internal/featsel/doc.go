// Package featsel implements the statistics-based feature selection of
// Section 3 (the "smart selection" whose payoff Figure 4 sweeps over K
// and w): the autocorrelation function of the training window's
// utilization series ranks the lags, the K most-correlated days are
// kept, and the training matrix is assembled from the utilization
// hours and CAN channel values ([vup/internal/canbus]) at the selected
// lags plus the target day's contextual features.
//
// [SelectLags] and [Spec] are re-run per training window by
// [vup/internal/core.EvaluateVehicle] — feature selection is inside
// the hold-out loop, as Section 4.1 requires — and the selection is a
// pure function of the window, so the parallel sweeps of
// [vup/internal/experiments] reproduce sequential feature sets
// exactly. The ACF itself lives in [vup/internal/stats].
package featsel
