package featsel

import (
	"errors"
	"math"
	"testing"

	"vup/internal/canbus"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
)

func testDataset(t *testing.T, days int) *etl.VehicleDataset {
	t.Helper()
	rng := randx.New(1)
	v := fleet.Vehicle{ID: "veh-0", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
	u := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, 1, rng.Split())}
	usage := u.Model.Simulate(fleet.StudyStart, days)
	d, err := etl.FromUsage(u, usage, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSelectLagsWeekly(t *testing.T) {
	// A weekly-periodic signal: the top lags must include 7.
	series := make([]float64, 210)
	for i := range series {
		series[i] = 4 + 3*math.Sin(2*math.Pi*float64(i)/7)
	}
	lags := SelectLags(series, 21, 3)
	found := false
	for _, l := range lags {
		if l == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("lag 7 not selected: %v", lags)
	}
}

func TestSelectLagsClampsMaxLag(t *testing.T) {
	series := []float64{1, 2, 3, 4, 5}
	lags := SelectLags(series, 100, 100)
	if len(lags) != 4 { // maxLag clamped to len-1
		t.Errorf("lags = %v", lags)
	}
}

func TestAllLags(t *testing.T) {
	lags := AllLags(5)
	if len(lags) != 5 || lags[0] != 1 || lags[4] != 5 {
		t.Errorf("AllLags = %v", lags)
	}
}

func TestSpecWidth(t *testing.T) {
	s := Spec{Lags: []int{1, 7}, Channels: []string{canbus.ChanFuelRate}, IncludeHours: true, IncludeContext: true}
	// 2 lags × (1 hour + 1 channel) + 15 context = 19.
	if got := s.Width(); got != 19 {
		t.Errorf("Width = %d", got)
	}
	noCtx := Spec{Lags: []int{1}, IncludeHours: true}
	if got := noCtx.Width(); got != 1 {
		t.Errorf("Width = %d", got)
	}
}

func TestSpecValidate(t *testing.T) {
	d := testDataset(t, 50)
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Lags: []int{1, 2}, IncludeHours: true}, true},
		{Spec{Lags: nil, IncludeHours: true}, false},
		{Spec{Lags: []int{2, 1}, IncludeHours: true}, false},
		{Spec{Lags: []int{0, 1}, IncludeHours: true}, false},
		{Spec{Lags: []int{1}}, false}, // no features at all
		{Spec{Lags: []int{1}, Channels: []string{"bogus"}}, false},
		{Spec{Lags: []int{1}, Channels: []string{canbus.ChanSpeed}}, true},
	}
	for i, c := range cases {
		err := c.spec.Validate(d)
		if (err == nil) != c.ok {
			t.Errorf("case %d: err = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestRowLayout(t *testing.T) {
	d := testDataset(t, 40)
	s := Spec{Lags: []int{1, 7}, Channels: []string{canbus.ChanFuelRate}, IncludeHours: true}
	row, ok := s.Row(d, 10)
	if !ok {
		t.Fatal("row not available")
	}
	want := []float64{
		d.Hours[9], d.Channels[canbus.ChanFuelRate][9],
		d.Hours[3], d.Channels[canbus.ChanFuelRate][3],
	}
	if len(row) != 4 {
		t.Fatalf("row = %v", row)
	}
	for i := range want {
		if row[i] != want[i] {
			t.Errorf("row[%d] = %v, want %v", i, row[i], want[i])
		}
	}
}

func TestRowUnderflow(t *testing.T) {
	d := testDataset(t, 40)
	s := Spec{Lags: []int{7}, IncludeHours: true}
	if _, ok := s.Row(d, 6); ok {
		t.Error("row before max lag accepted")
	}
	if _, ok := s.Row(d, 7); !ok {
		t.Error("first valid row rejected")
	}
	if _, ok := s.Row(d, 40); ok {
		t.Error("row beyond dataset accepted")
	}
}

func TestContextFeatures(t *testing.T) {
	d := testDataset(t, 40)
	s := Spec{Lags: []int{1}, IncludeHours: true, IncludeContext: true}
	// Day 0 of the study is Thursday 2015-01-01 (a holiday); pick day
	// t=8, Friday 2015-01-09.
	row, ok := s.Row(d, 8)
	if !ok {
		t.Fatal("row not available")
	}
	ctx := row[1:] // 1 lag feature, then context
	if len(ctx) != 15 {
		t.Fatalf("context width = %d", len(ctx))
	}
	// One-hot weekday: exactly one flag set, at Friday (index 5).
	sum := 0.0
	for i := 0; i < 7; i++ {
		sum += ctx[i]
	}
	if sum != 1 || ctx[5] != 1 {
		t.Errorf("weekday one-hot = %v", ctx[:7])
	}
	// Holiday flag clear, working-day flag set.
	if ctx[7] != 0 || ctx[8] != 1 {
		t.Errorf("holiday/working = %v %v", ctx[7], ctx[8])
	}
	// Season one-hot: exactly one.
	sSum := ctx[9] + ctx[10] + ctx[11] + ctx[12]
	if sSum != 1 {
		t.Errorf("season one-hot = %v", ctx[9:13])
	}
	// Month circle is on the unit circle.
	if r := ctx[13]*ctx[13] + ctx[14]*ctx[14]; math.Abs(r-1) > 1e-9 {
		t.Errorf("month circle radius² = %v", r)
	}
}

func TestMonthCircleAdjacency(t *testing.T) {
	dx, dy := monthCircle(12)
	jx, jy := monthCircle(1)
	jux, juy := monthCircle(6)
	distDecJan := math.Hypot(dx-jx, dy-jy)
	distDecJun := math.Hypot(dx-jux, dy-juy)
	if distDecJan >= distDecJun {
		t.Errorf("December-January (%v) not closer than December-June (%v)", distDecJan, distDecJun)
	}
}

func TestMatrix(t *testing.T) {
	d := testDataset(t, 60)
	s := Spec{Lags: []int{1, 2, 7}, Channels: []string{canbus.ChanEngineSpeed}, IncludeHours: true, IncludeContext: true}
	x, y, idx, err := s.Matrix(d, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Targets 7..59 are buildable.
	if len(x) != 53 || len(y) != 53 || len(idx) != 53 {
		t.Fatalf("rows = %d", len(x))
	}
	if idx[0] != 7 || idx[len(idx)-1] != 59 {
		t.Errorf("target idx range = %d..%d", idx[0], idx[len(idx)-1])
	}
	for i := range x {
		if len(x[i]) != s.Width() {
			t.Fatalf("row %d width = %d, want %d", i, len(x[i]), s.Width())
		}
		if y[i] != d.Hours[idx[i]] {
			t.Fatalf("target mismatch at %d", i)
		}
	}
}

func TestMatrixClampsRange(t *testing.T) {
	d := testDataset(t, 30)
	s := Spec{Lags: []int{1}, IncludeHours: true}
	x, _, idx, err := s.Matrix(d, -5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 29 || idx[0] != 1 {
		t.Errorf("clamped matrix rows = %d, first idx = %d", len(x), idx[0])
	}
}

func TestMatrixNoRows(t *testing.T) {
	d := testDataset(t, 30)
	s := Spec{Lags: []int{25}, IncludeHours: true}
	if _, _, _, err := s.Matrix(d, 0, 10); !errors.Is(err, ErrNoRows) {
		t.Errorf("want ErrNoRows, got %v", err)
	}
}

func TestMatrixInvalidSpec(t *testing.T) {
	d := testDataset(t, 30)
	s := Spec{Lags: nil, IncludeHours: true}
	if _, _, _, err := s.Matrix(d, 0, 30); err == nil {
		t.Error("invalid spec accepted")
	}
}
