package featsel

import (
	"errors"
	"math"
	"testing"
	"time"

	"vup/internal/etl"
	"vup/internal/geo"
	"vup/internal/randx"
)

// materializeDataset builds a synthetic dataset with distinctive
// per-channel values so any gather misalignment shows up as a value
// mismatch rather than a coincidental equality.
func materializeDataset(t *testing.T, n int) *etl.VehicleDataset {
	t.Helper()
	rng := randx.New(99)
	d := &etl.VehicleDataset{
		VehicleID: "mat-0",
		Country:   "IT",
		Start:     time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		Hours:     make([]float64, n),
		Channels: map[string][]float64{
			"alpha": make([]float64, n),
			"beta":  make([]float64, n),
			"gamma": make([]float64, n),
		},
		Observed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		d.Hours[i] = 10 * rng.Float64()
		d.Channels["alpha"][i] = 100 + float64(i)
		d.Channels["beta"][i] = -float64(i) * 0.5
		d.Channels["gamma"][i] = rng.Normal(0, 1)
		d.Observed[i] = true
	}
	d.Enrich()
	return d
}

func TestMaterializedMatchesSpec(t *testing.T) {
	d := materializeDataset(t, 90)
	const maxLag = 14
	channels := []string{"alpha", "beta"}
	targets := []string{"gamma", "alpha"} // overlap with channels on purpose
	m, err := Materialize(d, maxLag, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	lagSets := [][]int{{1}, {1, 7, 14}, {2, 3, 5, 8, 13}, {14}}
	for _, lags := range lagSets {
		spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true, TargetChannels: targets}
		if w := m.RowWidth(lags); w != spec.Width() {
			t.Fatalf("lags %v: width %d != spec width %d", lags, w, spec.Width())
		}
		dst := make([]float64, m.RowWidth(lags))
		for day := 0; day < d.Len(); day++ {
			want, wantOK := spec.Row(d, day)
			gotOK := m.GatherRow(dst, day, lags)
			if gotOK != wantOK {
				t.Fatalf("lags %v day %d: ok %v != spec ok %v", lags, day, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			for j := range want {
				if dst[j] != want[j] {
					t.Fatalf("lags %v day %d col %d: %v != %v", lags, day, j, dst[j], want[j])
				}
			}
		}
	}
}

func TestMaterializedMatrixMatchesSpec(t *testing.T) {
	d := materializeDataset(t, 80)
	lags := []int{1, 6, 12}
	channels := []string{"beta", "gamma"}
	m, err := Materialize(d, 12, channels, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true}
	var sc Scratch
	for _, rg := range [][2]int{{0, 40}, {5, 20}, {40, 80}, {-3, 200}} {
		wx, wy, _, werr := spec.Matrix(d, rg[0], rg[1])
		gx, gy, gerr := m.MatrixInto(&sc, lags, rg[0], rg[1])
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("range %v: err %v vs %v", rg, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if len(gx) != len(wx) {
			t.Fatalf("range %v: %d rows vs %d", rg, len(gx), len(wx))
		}
		for i := range wx {
			if gy[i] != wy[i] {
				t.Fatalf("range %v row %d: y %v vs %v", rg, i, gy[i], wy[i])
			}
			for j := range wx[i] {
				if gx[i][j] != wx[i][j] {
					t.Fatalf("range %v row %d col %d: %v vs %v", rg, i, j, gx[i][j], wx[i][j])
				}
			}
		}
	}
	// Empty range must reproduce Spec.Matrix's ErrNoRows.
	if _, _, err := m.MatrixInto(&sc, lags, 0, 3); !errors.Is(err, ErrNoRows) {
		t.Fatalf("want ErrNoRows, got %v", err)
	}
}

func TestMaterializedScratchReuse(t *testing.T) {
	// Two consecutive gathers with one scratch must not alias: the
	// second overwrites the first, which is exactly why callers copy
	// results they keep — but shapes shrink and grow safely.
	d := materializeDataset(t, 60)
	m, err := Materialize(d, 10, []string{"alpha"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	x1, y1, err := m.MatrixInto(&sc, []int{1, 2, 10}, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(x1) != 40 || len(y1) != 40 {
		t.Fatalf("rows %d/%d", len(x1), len(y1))
	}
	x2, _, err := m.MatrixInto(&sc, []int{3}, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(x2) != 57 {
		t.Fatalf("second gather rows %d", len(x2))
	}
	spec := Spec{Lags: []int{3}, Channels: []string{"alpha"}, IncludeHours: true}
	want, _, _, err := spec.Matrix(d, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if x2[i][j] != want[i][j] {
				t.Fatalf("reused scratch row %d col %d: %v vs %v", i, j, x2[i][j], want[i][j])
			}
		}
	}
}

func TestMaterializedExtendedRow(t *testing.T) {
	// The phantom-day path must equal Spec.Row over a literally
	// extended dataset (the old appendPhantomDay construction).
	d := materializeDataset(t, 50)
	channels := []string{"alpha", "beta"}
	targets := []string{"gamma"}
	m, err := Materialize(d, 9, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	lags := []int{1, 4, 9}
	n := d.Len()

	// Build the extension: two phantom days with predicted hours and a
	// target-channel override on the second.
	next1 := d.Date(n-1).AddDate(0, 0, 1)
	next2 := next1.AddDate(0, 0, 1)
	ctx := func(date time.Time) etl.Context {
		holiday, _ := geo.IsHoliday(d.Country, date)
		return etl.Context{
			DayOfWeek:  date.Weekday(),
			WeekOfYear: geo.WeekOfYear(date),
			Month:      date.Month(),
			Season:     geo.SeasonOf(date, geo.Northern),
			Year:       date.Year(),
			Holiday:    holiday,
			WorkingDay: geo.IsWorkingDay(d.Country, date),
		}
	}
	cols := map[string][]float64{
		"alpha": make([]float64, 2),
		"beta":  make([]float64, 2),
		"gamma": make([]float64, 2),
	}
	ext := &Extension{
		Hours: []float64{6.5, 0},
		Chans: [][]float64{cols["alpha"], cols["beta"]},
		Tgts:  [][]float64{cols["gamma"]},
		Ctx:   []etl.Context{ctx(next1), ctx(next2)},
	}
	cols["gamma"][1] = 42.0 // target override on step 1

	// Reference: clone the dataset with the same two phantom days.
	ref := &etl.VehicleDataset{
		VehicleID: d.VehicleID, Country: d.Country, Start: d.Start,
		Hours:    append(append([]float64(nil), d.Hours...), 6.5, 0),
		Channels: map[string][]float64{},
		Context:  append(append([]etl.Context(nil), d.Context...), ctx(next1), ctx(next2)),
		Observed: append(append([]bool(nil), d.Observed...), false, false),
	}
	for name, vals := range d.Channels {
		ref.Channels[name] = append(append([]float64(nil), vals...), 0, 0)
	}
	ref.Channels["gamma"][n+1] = 42.0

	spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true, TargetChannels: targets}
	dst := make([]float64, m.RowWidth(lags))
	for step := 0; step < 2; step++ {
		want, ok := spec.Row(ref, n+step)
		if !ok {
			t.Fatalf("reference row %d not buildable", step)
		}
		if !m.ExtendedRow(dst, step, lags, ext) {
			t.Fatalf("extended row %d refused", step)
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("step %d col %d: %v != %v", step, j, dst[j], want[j])
			}
		}
	}
}

func TestMaterializeErrors(t *testing.T) {
	d := materializeDataset(t, 30)
	if _, err := Materialize(d, 0, nil, false, nil); err == nil {
		t.Error("max lag 0 accepted")
	}
	if _, err := Materialize(d, 5, []string{"nope"}, false, nil); err == nil {
		t.Error("unknown channel accepted")
	}
	if _, err := Materialize(d, 5, nil, false, []string{"nope"}); err == nil {
		t.Error("unknown target channel accepted")
	}
	m, err := Materialize(d, 5, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, m.RowWidth([]int{5}))
	if m.GatherRow(dst, 3, []int{5}) {
		t.Error("underflowing lag gathered")
	}
	if m.GatherRow(dst, 30, []int{5}) {
		t.Error("out-of-range day gathered")
	}
	if m.Len() != 30 || m.MaxLag() != 5 {
		t.Errorf("Len/MaxLag = %d/%d", m.Len(), m.MaxLag())
	}
	if m.Y(3) != d.Hours[3] {
		t.Errorf("Y(3) = %v", m.Y(3))
	}
	_ = math.NaN()
}
