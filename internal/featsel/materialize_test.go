package featsel

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"vup/internal/etl"
	"vup/internal/geo"
	"vup/internal/randx"
)

// materializeDataset builds a synthetic dataset with distinctive
// per-channel values so any gather misalignment shows up as a value
// mismatch rather than a coincidental equality.
func materializeDataset(t *testing.T, n int) *etl.VehicleDataset {
	t.Helper()
	rng := randx.New(99)
	d := &etl.VehicleDataset{
		VehicleID: "mat-0",
		Country:   "IT",
		Start:     time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC),
		Hours:     make([]float64, n),
		Channels: map[string][]float64{
			"alpha": make([]float64, n),
			"beta":  make([]float64, n),
			"gamma": make([]float64, n),
		},
		Observed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		d.Hours[i] = 10 * rng.Float64()
		d.Channels["alpha"][i] = 100 + float64(i)
		d.Channels["beta"][i] = -float64(i) * 0.5
		d.Channels["gamma"][i] = rng.Normal(0, 1)
		d.Observed[i] = true
	}
	d.Enrich()
	return d
}

func TestMaterializedMatchesSpec(t *testing.T) {
	d := materializeDataset(t, 90)
	const maxLag = 14
	channels := []string{"alpha", "beta"}
	targets := []string{"gamma", "alpha"} // overlap with channels on purpose
	m, err := Materialize(d, maxLag, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	lagSets := [][]int{{1}, {1, 7, 14}, {2, 3, 5, 8, 13}, {14}}
	for _, lags := range lagSets {
		spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true, TargetChannels: targets}
		if w := m.RowWidth(lags); w != spec.Width() {
			t.Fatalf("lags %v: width %d != spec width %d", lags, w, spec.Width())
		}
		dst := make([]float64, m.RowWidth(lags))
		for day := 0; day < d.Len(); day++ {
			want, wantOK := spec.Row(d, day)
			gotOK := m.GatherRow(dst, day, lags)
			if gotOK != wantOK {
				t.Fatalf("lags %v day %d: ok %v != spec ok %v", lags, day, gotOK, wantOK)
			}
			if !gotOK {
				continue
			}
			for j := range want {
				if dst[j] != want[j] {
					t.Fatalf("lags %v day %d col %d: %v != %v", lags, day, j, dst[j], want[j])
				}
			}
		}
	}
}

func TestMaterializedMatrixMatchesSpec(t *testing.T) {
	d := materializeDataset(t, 80)
	lags := []int{1, 6, 12}
	channels := []string{"beta", "gamma"}
	m, err := Materialize(d, 12, channels, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true}
	var sc Scratch
	for _, rg := range [][2]int{{0, 40}, {5, 20}, {40, 80}, {-3, 200}} {
		wx, wy, _, werr := spec.Matrix(d, rg[0], rg[1])
		gx, gy, gerr := m.MatrixInto(&sc, lags, rg[0], rg[1])
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("range %v: err %v vs %v", rg, gerr, werr)
		}
		if werr != nil {
			continue
		}
		if len(gx) != len(wx) {
			t.Fatalf("range %v: %d rows vs %d", rg, len(gx), len(wx))
		}
		for i := range wx {
			if gy[i] != wy[i] {
				t.Fatalf("range %v row %d: y %v vs %v", rg, i, gy[i], wy[i])
			}
			for j := range wx[i] {
				if gx[i][j] != wx[i][j] {
					t.Fatalf("range %v row %d col %d: %v vs %v", rg, i, j, gx[i][j], wx[i][j])
				}
			}
		}
	}
	// Empty range must reproduce Spec.Matrix's ErrNoRows.
	if _, _, err := m.MatrixInto(&sc, lags, 0, 3); !errors.Is(err, ErrNoRows) {
		t.Fatalf("want ErrNoRows, got %v", err)
	}
}

func TestMaterializedScratchReuse(t *testing.T) {
	// Two consecutive gathers with one scratch must not alias: the
	// second overwrites the first, which is exactly why callers copy
	// results they keep — but shapes shrink and grow safely.
	d := materializeDataset(t, 60)
	m, err := Materialize(d, 10, []string{"alpha"}, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sc Scratch
	x1, y1, err := m.MatrixInto(&sc, []int{1, 2, 10}, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(x1) != 40 || len(y1) != 40 {
		t.Fatalf("rows %d/%d", len(x1), len(y1))
	}
	x2, _, err := m.MatrixInto(&sc, []int{3}, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(x2) != 57 {
		t.Fatalf("second gather rows %d", len(x2))
	}
	spec := Spec{Lags: []int{3}, Channels: []string{"alpha"}, IncludeHours: true}
	want, _, _, err := spec.Matrix(d, 3, 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if x2[i][j] != want[i][j] {
				t.Fatalf("reused scratch row %d col %d: %v vs %v", i, j, x2[i][j], want[i][j])
			}
		}
	}
}

func TestMaterializedExtendedRow(t *testing.T) {
	// The phantom-day path must equal Spec.Row over a literally
	// extended dataset (the old appendPhantomDay construction).
	d := materializeDataset(t, 50)
	channels := []string{"alpha", "beta"}
	targets := []string{"gamma"}
	m, err := Materialize(d, 9, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	lags := []int{1, 4, 9}
	n := d.Len()

	// Build the extension: two phantom days with predicted hours and a
	// target-channel override on the second.
	next1 := d.Date(n-1).AddDate(0, 0, 1)
	next2 := next1.AddDate(0, 0, 1)
	ctx := func(date time.Time) etl.Context {
		holiday, _ := geo.IsHoliday(d.Country, date)
		return etl.Context{
			DayOfWeek:  date.Weekday(),
			WeekOfYear: geo.WeekOfYear(date),
			Month:      date.Month(),
			Season:     geo.SeasonOf(date, geo.Northern),
			Year:       date.Year(),
			Holiday:    holiday,
			WorkingDay: geo.IsWorkingDay(d.Country, date),
		}
	}
	cols := map[string][]float64{
		"alpha": make([]float64, 2),
		"beta":  make([]float64, 2),
		"gamma": make([]float64, 2),
	}
	ext := &Extension{
		Hours: []float64{6.5, 0},
		Chans: [][]float64{cols["alpha"], cols["beta"]},
		Tgts:  [][]float64{cols["gamma"]},
		Ctx:   []etl.Context{ctx(next1), ctx(next2)},
	}
	cols["gamma"][1] = 42.0 // target override on step 1

	// Reference: clone the dataset with the same two phantom days.
	ref := &etl.VehicleDataset{
		VehicleID: d.VehicleID, Country: d.Country, Start: d.Start,
		Hours:    append(append([]float64(nil), d.Hours...), 6.5, 0),
		Channels: map[string][]float64{},
		Context:  append(append([]etl.Context(nil), d.Context...), ctx(next1), ctx(next2)),
		Observed: append(append([]bool(nil), d.Observed...), false, false),
	}
	for name, vals := range d.Channels {
		ref.Channels[name] = append(append([]float64(nil), vals...), 0, 0)
	}
	ref.Channels["gamma"][n+1] = 42.0

	spec := Spec{Lags: lags, Channels: channels, IncludeHours: true, IncludeContext: true, TargetChannels: targets}
	dst := make([]float64, m.RowWidth(lags))
	for step := 0; step < 2; step++ {
		want, ok := spec.Row(ref, n+step)
		if !ok {
			t.Fatalf("reference row %d not buildable", step)
		}
		if !m.ExtendedRow(dst, step, lags, ext) {
			t.Fatalf("extended row %d refused", step)
		}
		for j := range want {
			if dst[j] != want[j] {
				t.Fatalf("step %d col %d: %v != %v", step, j, dst[j], want[j])
			}
		}
	}
}

// growDataset appends k synthetic days to a copy-free view chain: it
// returns a dataset value sharing the first d.Len() entries with d and
// carrying k fresh days after them.
func growDataset(t *testing.T, d *etl.VehicleDataset, k int) *etl.VehicleDataset {
	t.Helper()
	out := &etl.VehicleDataset{
		VehicleID: d.VehicleID, Country: d.Country, Start: d.Start,
		Hours:    append(append([]float64(nil), d.Hours...), make([]float64, k)...),
		Channels: map[string][]float64{},
		Observed: append(append([]bool(nil), d.Observed...), make([]bool, k)...),
	}
	for name, vals := range d.Channels {
		out.Channels[name] = append(append([]float64(nil), vals...), make([]float64, k)...)
	}
	n := d.Len()
	for i := 0; i < k; i++ {
		out.Hours[n+i] = 3 + float64(i)
		out.Observed[n+i] = true
		out.Channels["alpha"][n+i] = 200 + float64(i)
		out.Channels["beta"][n+i] = -40 - float64(i)
		out.Channels["gamma"][n+i] = float64(i) * 0.25
	}
	out.Enrich()
	return out
}

// TestAppendDaysMatchesFreshMaterialize: the extended superset must be
// bitwise identical to materializing the grown dataset from scratch.
func TestAppendDaysMatchesFreshMaterialize(t *testing.T) {
	d := materializeDataset(t, 70)
	channels := []string{"alpha", "beta"}
	targets := []string{"gamma", "alpha"}
	m, err := Materialize(d, 11, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	// Three successive appends of 1, 3 and 1 days exercise both the
	// realloc path (first append: materialize leaves no spare capacity)
	// and the in-place tail path (later appends inherit headroom).
	cur := m
	grown := d
	for _, k := range []int{1, 3, 1} {
		grown = growDataset(t, grown, k)
		next, err := cur.AppendDays(grown)
		if err != nil {
			t.Fatal(err)
		}
		if next.Len() != grown.Len() {
			t.Fatalf("extended len %d, want %d", next.Len(), grown.Len())
		}
		cur = next
	}
	fresh, err := Materialize(grown, 11, channels, true, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur.data) != len(fresh.data) {
		t.Fatalf("data len %d vs fresh %d", len(cur.data), len(fresh.data))
	}
	for i := range fresh.data {
		if math.Float64bits(cur.data[i]) != math.Float64bits(fresh.data[i]) {
			t.Fatalf("superset drifted at flat index %d: %v vs %v", i, cur.data[i], fresh.data[i])
		}
	}
	// And the gather surface agrees end to end.
	lags := []int{1, 5, 11}
	a := make([]float64, cur.RowWidth(lags))
	b := make([]float64, fresh.RowWidth(lags))
	for day := 0; day < grown.Len(); day++ {
		if cur.GatherRow(a, day, lags) != fresh.GatherRow(b, day, lags) {
			t.Fatalf("day %d: gather availability differs", day)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("day %d col %d: %v vs %v", day, j, a[j], b[j])
			}
		}
	}
}

// TestAppendDaysForkSafety: two children extended from one parent must
// not trample each other — only one may claim the parent's tail in
// place; the other reallocates. The parent's own rows stay intact.
func TestAppendDaysForkSafety(t *testing.T) {
	d := materializeDataset(t, 50)
	m, err := Materialize(d, 7, []string{"alpha"}, false, []string{"alpha"})
	if err != nil {
		t.Fatal(err)
	}
	// Give the parent spare capacity by extending once first.
	g1 := growDataset(t, d, 1)
	parent, err := m.AppendDays(g1)
	if err != nil {
		t.Fatal(err)
	}
	// Fork: two different continuations of the same parent.
	gA := growDataset(t, g1, 1)
	gB := growDataset(t, g1, 1)
	gB.Hours[gB.Len()-1] = 23.5
	gB.Channels["alpha"][gB.Len()-1] = -1
	childA, err := parent.AppendDays(gA)
	if err != nil {
		t.Fatal(err)
	}
	childB, err := parent.AppendDays(gB)
	if err != nil {
		t.Fatal(err)
	}
	lags := []int{1}
	rowA := make([]float64, childA.RowWidth(lags))
	rowB := make([]float64, childB.RowWidth(lags))
	last := gA.Len() - 1
	if !childA.GatherRow(rowA, last, lags) || !childB.GatherRow(rowB, last, lags) {
		t.Fatal("forked children refuse their own last day")
	}
	// The forked day's target-channel value differs by construction:
	// 200 on the A branch, the -1 override on B. childB was built after
	// childA, so if both had claimed the parent's tail in place, B's
	// write would have trampled A's row and this check would see -1.
	tA, tB := rowA[len(rowA)-1], rowB[len(rowB)-1]
	if tA != 200 || tB != -1 {
		t.Errorf("forked target columns = %v and %v, want 200 and -1", tA, tB)
	}
	if got := childB.Y(last); got != 23.5 {
		t.Errorf("child B target = %v, want 23.5", got)
	}
	// Parent unchanged: its last day is still g1's.
	if parent.Len() != g1.Len() || parent.Y(parent.Len()-1) != g1.Hours[g1.Len()-1] {
		t.Error("extending children mutated the parent's visible rows")
	}
}

func TestAppendDaysRefusals(t *testing.T) {
	d := materializeDataset(t, 40)
	m, err := Materialize(d, 6, []string{"alpha"}, true, []string{"beta"})
	if err != nil {
		t.Fatal(err)
	}
	// Shrunk dataset.
	smaller, err := d.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendDays(smaller); err == nil {
		t.Error("shrunk dataset accepted")
	}
	// Rewritten lag window.
	g := growDataset(t, d, 1)
	g.Hours[d.Len()-1] += 0.5
	if _, err := m.AppendDays(g); err == nil {
		t.Error("rewritten lag-window hours accepted")
	}
	g2 := growDataset(t, d, 1)
	g2.Channels["alpha"][d.Len()-2] += 1
	if _, err := m.AppendDays(g2); err == nil {
		t.Error("rewritten lag-window channel accepted")
	}
	g3 := growDataset(t, d, 1)
	g3.Channels["beta"][d.Len()-1] += 1
	if _, err := m.AppendDays(g3); err == nil {
		t.Error("rewritten lag-window target channel accepted")
	}
	// Missing channel.
	g4 := growDataset(t, d, 1)
	delete(g4.Channels, "alpha")
	if _, err := m.AppendDays(g4); err == nil {
		t.Error("missing channel accepted")
	}
	// Same length: shares rows, re-points columns.
	same := growDataset(t, d, 0)
	s, err := m.AppendDays(same)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != m.Len() || &s.data[0] != &m.data[0] {
		t.Error("no-op append should share the parent's rows")
	}
}

// BenchmarkAppendDays measures the single-day append at several base
// lengths; the per-day cost must be flat in n (the acceptance
// criterion recorded in BENCH_ingest.json).
func BenchmarkAppendDays(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			full := benchDataset(n + b.N + 1)
			view := benchView(full, n)
			m, err := Materialize(view, 28, []string{"alpha", "beta"}, true, []string{"gamma"})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next, err := m.AppendDays(benchView(full, n+i+1))
				if err != nil {
					b.Fatal(err)
				}
				m = next
			}
		})
	}
}

// BenchmarkMaterializeFull is the rebuild baseline AppendDays replaces.
func BenchmarkMaterializeFull(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			full := benchDataset(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Materialize(full, 28, []string{"alpha", "beta"}, true, []string{"gamma"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchDataset(n int) *etl.VehicleDataset {
	rng := randx.New(7)
	d := &etl.VehicleDataset{
		VehicleID: "bench-0",
		Country:   "IT",
		Start:     time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC),
		Hours:     make([]float64, n),
		Channels: map[string][]float64{
			"alpha": make([]float64, n),
			"beta":  make([]float64, n),
			"gamma": make([]float64, n),
		},
		Observed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		d.Hours[i] = 12 * rng.Float64()
		d.Channels["alpha"][i] = rng.Normal(50, 10)
		d.Channels["beta"][i] = rng.Normal(0, 1)
		d.Channels["gamma"][i] = rng.Float64()
		d.Observed[i] = true
	}
	d.Enrich()
	return d
}

// benchView exposes the first k days of full without copying columns —
// the O(F) view construction the ingest path uses per append.
func benchView(full *etl.VehicleDataset, k int) *etl.VehicleDataset {
	v := &etl.VehicleDataset{
		VehicleID: full.VehicleID, Country: full.Country, Start: full.Start,
		Hours:    full.Hours[:k],
		Channels: make(map[string][]float64, len(full.Channels)),
		Context:  full.Context[:k],
		Observed: full.Observed[:k],
	}
	for name, vals := range full.Channels {
		v.Channels[name] = vals[:k]
	}
	return v
}

func TestMaterializeErrors(t *testing.T) {
	d := materializeDataset(t, 30)
	if _, err := Materialize(d, 0, nil, false, nil); err == nil {
		t.Error("max lag 0 accepted")
	}
	if _, err := Materialize(d, 5, []string{"nope"}, false, nil); err == nil {
		t.Error("unknown channel accepted")
	}
	if _, err := Materialize(d, 5, nil, false, []string{"nope"}); err == nil {
		t.Error("unknown target channel accepted")
	}
	m, err := Materialize(d, 5, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, m.RowWidth([]int{5}))
	if m.GatherRow(dst, 3, []int{5}) {
		t.Error("underflowing lag gathered")
	}
	if m.GatherRow(dst, 30, []int{5}) {
		t.Error("out-of-range day gathered")
	}
	if m.Len() != 30 || m.MaxLag() != 5 {
		t.Errorf("Len/MaxLag = %d/%d", m.Len(), m.MaxLag())
	}
	if m.Y(3) != d.Hours[3] {
		t.Errorf("Y(3) = %v", m.Y(3))
	}
	_ = math.NaN()
}
