package featsel

import (
	"errors"
	"fmt"
	"math"
	"time"

	"vup/internal/etl"
	"vup/internal/stats"
)

// ErrNoRows is returned when a requested range yields no usable rows.
var ErrNoRows = errors.New("featsel: no feature rows in range")

// Spec describes the feature layout of one training matrix.
type Spec struct {
	// Lags are the selected day offsets (>=1), ascending.
	Lags []int
	// Channels are the CAN channel names to lag alongside the hours.
	Channels []string
	// IncludeHours lags the utilization series itself (the paper
	// always does).
	IncludeHours bool
	// IncludeContext appends the target day's contextual features.
	IncludeContext bool
	// TargetChannels are channels whose value on the *target day* is
	// included as a feature — context known in advance, such as the
	// weather forecast (the paper's future-work enrichment).
	TargetChannels []string
}

// SelectLags ranks lags 1..maxLag of the series by autocorrelation and
// returns the top k, ascending — the paper's selection rule. The
// window is the training slice of the utilization series.
func SelectLags(series []float64, maxLag, k int) []int {
	if maxLag >= len(series) {
		maxLag = len(series) - 1
	}
	return stats.TopLags(series, maxLag, k)
}

// AllLags returns 1..w, the no-selection reference configuration
// ("consider every previous day in the window").
func AllLags(w int) []int {
	out := make([]int, w)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// Width returns the number of columns a spec produces.
func (s Spec) Width() int {
	perLag := 0
	if s.IncludeHours {
		perLag++
	}
	perLag += len(s.Channels)
	w := len(s.Lags) * perLag
	if s.IncludeContext {
		w += contextWidth
	}
	return w + len(s.TargetChannels)
}

// Context layout: 7 one-hot weekday flags, holiday, working-day,
// 4 one-hot seasons, and the month encoded on the unit circle.
const contextWidth = 7 + 1 + 1 + 4 + 2

// Validate checks the spec against a dataset.
func (s Spec) Validate(d *etl.VehicleDataset) error {
	if len(s.Lags) == 0 {
		return fmt.Errorf("featsel: spec with no lags")
	}
	prev := 0
	for _, l := range s.Lags {
		if l <= prev {
			return fmt.Errorf("featsel: lags must be ascending and positive, got %v", s.Lags)
		}
		prev = l
	}
	if !s.IncludeHours && len(s.Channels) == 0 {
		return fmt.Errorf("featsel: spec selects no features")
	}
	for _, ch := range s.Channels {
		if _, ok := d.Channels[ch]; !ok {
			return fmt.Errorf("featsel: dataset has no channel %q", ch)
		}
	}
	for _, ch := range s.TargetChannels {
		if _, ok := d.Channels[ch]; !ok {
			return fmt.Errorf("featsel: dataset has no target channel %q", ch)
		}
	}
	return nil
}

// Row assembles the feature row whose prediction target is day t of
// the dataset. It returns false when a lag would reach before day 0.
func (s Spec) Row(d *etl.VehicleDataset, t int) ([]float64, bool) {
	maxLag := s.Lags[len(s.Lags)-1]
	if t-maxLag < 0 || t >= d.Len() {
		return nil, false
	}
	row := make([]float64, 0, s.Width())
	for _, lag := range s.Lags {
		i := t - lag
		if s.IncludeHours {
			row = append(row, d.Hours[i])
		}
		for _, ch := range s.Channels {
			row = append(row, d.Channels[ch][i])
		}
	}
	if s.IncludeContext {
		row = append(row, contextFeatures(d.Context[t])...)
	}
	for _, ch := range s.TargetChannels {
		row = append(row, d.Channels[ch][t])
	}
	return row, true
}

func contextFeatures(c etl.Context) []float64 {
	out := make([]float64, contextWidth)
	fillContext(out, c)
	return out
}

// fillContext writes the context encoding into dst (len contextWidth):
// one-hot weekday, holiday and working-day flags, one-hot season and
// the month on the unit circle. Both the per-row Spec path and the
// one-pass materialization use it, so the encodings cannot diverge.
func fillContext(dst []float64, c etl.Context) {
	for wd := time.Sunday; wd <= time.Saturday; wd++ {
		if c.DayOfWeek == wd {
			dst[wd] = 1
		} else {
			dst[wd] = 0
		}
	}
	k := 7
	dst[k] = 0
	if c.Holiday {
		dst[k] = 1
	}
	k++
	dst[k] = 0
	if c.WorkingDay {
		dst[k] = 1
	}
	k++
	for season := 0; season < 4; season++ {
		if int(c.Season) == season {
			dst[k+season] = 1
		} else {
			dst[k+season] = 0
		}
	}
	k += 4
	dst[k], dst[k+1] = monthCircle(c.Month)
}

// monthCircle encodes the month on the unit circle so December and
// January are close.
func monthCircle(m time.Month) (x, y float64) {
	angle := 2 * math.Pi * float64(m-1) / 12
	return math.Cos(angle), math.Sin(angle)
}

// Matrix assembles the training matrix whose targets are the days in
// [from, to) of the dataset. Days whose lags would underflow are
// skipped; targetIdx reports the dataset day of each returned row.
func (s Spec) Matrix(d *etl.VehicleDataset, from, to int) (x [][]float64, y []float64, targetIdx []int, err error) {
	if err := s.Validate(d); err != nil {
		return nil, nil, nil, err
	}
	if from < 0 {
		from = 0
	}
	if to > d.Len() {
		to = d.Len()
	}
	for t := from; t < to; t++ {
		row, ok := s.Row(d, t)
		if !ok {
			continue
		}
		x = append(x, row)
		y = append(y, d.Hours[t])
		targetIdx = append(targetIdx, t)
	}
	if len(x) == 0 {
		return nil, nil, nil, fmt.Errorf("%w: [%d, %d) with max lag %d", ErrNoRows, from, to, s.Lags[len(s.Lags)-1])
	}
	return x, y, targetIdx, nil
}
