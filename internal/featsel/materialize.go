package featsel

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"vup/internal/etl"
	"vup/internal/obs/trace"
)

// Materialized is the lag-superset feature materialization of one
// dataset: every feature any per-window Spec could select — hours and
// channel lags up to MaxLag, the context encoding and the target-day
// channel values — computed once, in a single O(n×F) pass, and laid
// out row-major so a window's actual feature matrix is assembled by
// block copies instead of per-element map lookups and context
// re-encoding.
//
// Per-day superset row layout:
//
//	[ lag-1 block | lag-2 block | … | lag-MaxLag block | context | target channels ]
//
// where each lag block is [hours(t−ℓ), ch₁(t−ℓ), …, ch_C(t−ℓ)] in the
// materialization's channel order. Lag blocks that would reach before
// day 0 are left zero; GatherRow refuses any target day whose largest
// selected lag would touch them, exactly as Spec.Row does.
//
// The hours series is always included (the paper's pipeline always
// lags the utilization target itself).
type Materialized struct {
	maxLag         int
	channels       []string
	includeContext bool
	targetChannels []string

	n      int
	block  int // 1 + len(channels)
	ctxOff int // context block offset within a superset row
	tgtOff int // target-channel block offset
	width  int // full superset row width
	data   []float64

	// Base columns, resolved once: the hours series and each
	// configured channel as a contiguous slice. ExtendedRow reads
	// them when a phantom day's lags reach back into the real series.
	hours []float64
	chans [][]float64
	tgts  [][]float64

	// tailOwned guards the spare capacity past len(data): AppendDays
	// extends a parent in place only after winning this flag, so two
	// concurrent extensions of the same parent never write the same
	// tail — the loser (and every later child) reallocates.
	tailOwned atomic.Bool
}

// Materialize compiles the superset for d. maxLag must be >= 1; every
// channel and target channel must exist in the dataset.
func Materialize(d *etl.VehicleDataset, maxLag int, channels []string, includeContext bool, targetChannels []string) (*Materialized, error) {
	return MaterializeContext(context.Background(), d, maxLag, channels, includeContext, targetChannels)
}

// MaterializeContext is Materialize under a request context: when the
// context carries an active trace span, the one-pass build is recorded
// as a "featsel.materialize" child with the superset dimensions.
func MaterializeContext(ctx context.Context, d *etl.VehicleDataset, maxLag int, channels []string, includeContext bool, targetChannels []string) (m *Materialized, err error) {
	_, sp := trace.Start(ctx, "featsel.materialize")
	defer func() {
		if sp != nil {
			if m != nil {
				sp.SetAttrInt("days", m.n)
				sp.SetAttrInt("width", m.width)
			}
			sp.SetError(err)
			sp.End()
		}
	}()
	return materialize(d, maxLag, channels, includeContext, targetChannels)
}

func materialize(d *etl.VehicleDataset, maxLag int, channels []string, includeContext bool, targetChannels []string) (*Materialized, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("featsel: materialize with max lag %d", maxLag)
	}
	for _, ch := range channels {
		if _, ok := d.Channels[ch]; !ok {
			return nil, fmt.Errorf("featsel: dataset has no channel %q", ch)
		}
	}
	for _, ch := range targetChannels {
		if _, ok := d.Channels[ch]; !ok {
			return nil, fmt.Errorf("featsel: dataset has no target channel %q", ch)
		}
	}
	n := d.Len()
	m := &Materialized{
		maxLag:         maxLag,
		channels:       channels,
		includeContext: includeContext,
		targetChannels: targetChannels,
		n:              n,
		block:          1 + len(channels),
		hours:          d.Hours,
		chans:          make([][]float64, len(channels)),
		tgts:           make([][]float64, len(targetChannels)),
	}
	for i, ch := range channels {
		m.chans[i] = d.Channels[ch]
	}
	for i, ch := range targetChannels {
		m.tgts[i] = d.Channels[ch]
	}
	m.ctxOff = maxLag * m.block
	m.tgtOff = m.ctxOff
	if includeContext {
		m.tgtOff += contextWidth
	}
	m.width = m.tgtOff + len(targetChannels)

	// The one pass: for every day fill the available lag blocks, the
	// context encoding and the target-day channel values.
	m.data = make([]float64, n*m.width)
	for t := 0; t < n; t++ {
		row := m.data[t*m.width : (t+1)*m.width]
		limit := maxLag
		if t < limit {
			limit = t
		}
		for lag := 1; lag <= limit; lag++ {
			off := (lag - 1) * m.block
			i := t - lag
			row[off] = m.hours[i]
			for c, col := range m.chans {
				row[off+1+c] = col[i]
			}
		}
		if includeContext {
			fillContext(row[m.ctxOff:m.ctxOff+contextWidth], d.Context[t])
		}
		for c, col := range m.tgts {
			row[m.tgtOff+c] = col[t]
		}
	}
	return m, nil
}

// AppendDays extends the materialization to cover d, a dataset whose
// first Len() days are value-identical to the one m was built from
// (the streaming-ingest append: same series, new tail). It returns a
// new *Materialized — m stays valid for concurrent readers holding
// cached plans — and costs O(k×F) for k appended days, independent of
// the dataset length: only the new rows are computed, and the backing
// array is reused in place when m has unclaimed spare capacity (one
// winner per parent, decided by tailOwned; everyone else reallocates
// with geometric headroom, so a chain of single-day appends is
// amortized O(F) per day).
//
// The caller owns the prefix-equality contract; AppendDays verifies
// only the slice every new row can actually read — the trailing
// MaxLag days of the overlap, bitwise — and refuses on drift. A
// dataset that shrank or lost a configured channel is also refused;
// the caller falls back to a full Materialize.
func (m *Materialized) AppendDays(d *etl.VehicleDataset) (*Materialized, error) {
	n2 := d.Len()
	if n2 < m.n {
		return nil, fmt.Errorf("featsel: append from %d to %d days: dataset shrank", m.n, n2)
	}
	hours := d.Hours
	chans := make([][]float64, len(m.channels))
	for i, ch := range m.channels {
		col, ok := d.Channels[ch]
		if !ok {
			return nil, fmt.Errorf("featsel: append dataset has no channel %q", ch)
		}
		chans[i] = col
	}
	tgts := make([][]float64, len(m.targetChannels))
	for i, ch := range m.targetChannels {
		col, ok := d.Channels[ch]
		if !ok {
			return nil, fmt.Errorf("featsel: append dataset has no target channel %q", ch)
		}
		tgts[i] = col
	}
	// The lag window feeding the new rows must be unchanged. Bitwise
	// comparison: NaN-safe and invisible to float tolerance debates.
	lo := m.n - m.maxLag
	if lo < 0 {
		lo = 0
	}
	if !bitsEqual(hours[lo:m.n], m.hours[lo:m.n]) {
		return nil, fmt.Errorf("featsel: append dataset rewrote hours in the lag window [%d, %d)", lo, m.n)
	}
	for i, col := range chans {
		if !bitsEqual(col[lo:m.n], m.chans[i][lo:m.n]) {
			return nil, fmt.Errorf("featsel: append dataset rewrote channel %q in the lag window", m.channels[i])
		}
	}
	for i, col := range tgts {
		if !bitsEqual(col[lo:m.n], m.tgts[i][lo:m.n]) {
			return nil, fmt.Errorf("featsel: append dataset rewrote target channel %q in the lag window", m.targetChannels[i])
		}
	}

	child := &Materialized{
		maxLag:         m.maxLag,
		channels:       m.channels,
		includeContext: m.includeContext,
		targetChannels: m.targetChannels,
		n:              n2,
		block:          m.block,
		ctxOff:         m.ctxOff,
		tgtOff:         m.tgtOff,
		width:          m.width,
		hours:          hours,
		chans:          chans,
		tgts:           tgts,
	}
	need := n2 * m.width
	if n2 == m.n {
		// Nothing to append: share the rows as-is (no writes, no claim),
		// re-pointing the base columns at the caller's dataset.
		child.data = m.data[:need:need]
		return child, nil
	}
	if cap(m.data) >= need && m.tailOwned.CompareAndSwap(false, true) {
		// Won the parent's tail: the region past m.n*width was zeroed at
		// allocation and, by the CAS chain, never written by anyone else.
		child.data = m.data[:need]
	} else {
		headroom := n2/4 + 4 // geometric: reallocs per day amortize out
		child.data = append(make([]float64, 0, (n2+headroom)*m.width), m.data[:m.n*m.width]...)
		child.data = child.data[:need]
	}
	for t := m.n; t < n2; t++ {
		row := child.data[t*m.width : (t+1)*m.width]
		limit := m.maxLag
		if t < limit {
			limit = t
		}
		for lag := 1; lag <= limit; lag++ {
			off := (lag - 1) * m.block
			i := t - lag
			row[off] = hours[i]
			for c, col := range chans {
				row[off+1+c] = col[i]
			}
		}
		if m.includeContext {
			fillContext(row[m.ctxOff:m.ctxOff+contextWidth], d.Context[t])
		}
		for c, col := range tgts {
			row[m.tgtOff+c] = col[t]
		}
	}
	return child, nil
}

// bitsEqual reports whether two float slices are bitwise identical.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Len returns the number of materialized days.
func (m *Materialized) Len() int { return m.n }

// MaxLag returns the materialized lag budget.
func (m *Materialized) MaxLag() int { return m.maxLag }

// RowWidth returns the assembled feature-row width for a set of
// selected lags — identical to the equivalent Spec.Width().
func (m *Materialized) RowWidth(lags []int) int {
	return len(lags)*m.block + (m.tgtOff - m.ctxOff) + len(m.targetChannels)
}

// Y returns the prediction target (utilization hours) of day t.
func (m *Materialized) Y(t int) float64 { return m.hours[t] }

// GatherRow assembles the feature row whose prediction target is day
// t into dst (which must have RowWidth(lags) capacity) by copying the
// selected lag blocks, the context encoding and the target-channel
// values out of the superset. It reports false when a selected lag
// would reach before day 0 — the same refusal as Spec.Row. lags must
// be ascending, each within [1, MaxLag].
func (m *Materialized) GatherRow(dst []float64, t int, lags []int) bool {
	if len(lags) == 0 || t >= m.n || t-lags[len(lags)-1] < 0 {
		return false
	}
	row := m.data[t*m.width : (t+1)*m.width]
	k := 0
	for _, lag := range lags {
		off := (lag - 1) * m.block
		k += copy(dst[k:], row[off:off+m.block])
	}
	k += copy(dst[k:], row[m.ctxOff:m.tgtOff])
	copy(dst[k:], row[m.tgtOff:m.width])
	return true
}

// Scratch is reusable backing for gathered training matrices. The
// Regressor contract forbids models from retaining x or y, so one
// scratch can serve every window of an evaluation loop without
// cross-window aliasing.
type Scratch struct {
	rows    [][]float64
	backing []float64
	y       []float64
}

// MatrixInto assembles the training matrix whose targets are the days
// in [from, to), skipping days whose lags would underflow — value- and
// order-identical to Spec.Matrix on the same dataset. The returned
// slices alias s and are valid until the next call with the same
// scratch.
func (m *Materialized) MatrixInto(s *Scratch, lags []int, from, to int) (x [][]float64, y []float64, err error) {
	if from < 0 {
		from = 0
	}
	if to > m.n {
		to = m.n
	}
	width := m.RowWidth(lags)
	rows := to - from
	if rows < 0 {
		rows = 0
	}
	if cap(s.backing) < rows*width {
		s.backing = make([]float64, rows*width)
	}
	if cap(s.rows) < rows {
		s.rows = make([][]float64, rows)
	}
	if cap(s.y) < rows {
		s.y = make([]float64, rows)
	}
	s.rows, s.y = s.rows[:0], s.y[:0]
	used := 0
	for t := from; t < to; t++ {
		dst := s.backing[used : used+width : used+width]
		if !m.GatherRow(dst, t, lags) {
			continue
		}
		s.rows = append(s.rows, dst)
		s.y = append(s.y, m.hours[t])
		used += width
	}
	if len(s.rows) == 0 {
		return nil, nil, fmt.Errorf("%w: [%d, %d) with max lag %d", ErrNoRows, from, to, lags[len(lags)-1])
	}
	return s.rows, s.y, nil
}

// Extension holds phantom days appended past the materialized series
// for iterated forecasting: absolute day n+i reads Hours[i], the
// per-channel phantom values and Ctx[i]. Chans and Tgts are aligned
// with the materialization's channel orders; a channel appearing in
// both lists must share one backing slice so a target-day override is
// also visible to later steps' lag features.
type Extension struct {
	Hours []float64
	Chans [][]float64
	Tgts  [][]float64
	Ctx   []etl.Context
}

// ExtendedRow assembles the feature row for phantom day n+step, with
// lags reading the base series and any earlier phantom days, the
// context encoding taken from the phantom's own context and the
// target-channel values from the phantom's channel slots. It reports
// false when a lag would reach before day 0.
func (m *Materialized) ExtendedRow(dst []float64, step int, lags []int, ext *Extension) bool {
	t := m.n + step
	if len(lags) == 0 || t-lags[len(lags)-1] < 0 || step >= len(ext.Hours) {
		return false
	}
	k := 0
	for _, lag := range lags {
		i := t - lag
		if i >= m.n {
			dst[k] = ext.Hours[i-m.n]
			for c := range m.chans {
				dst[k+1+c] = ext.Chans[c][i-m.n]
			}
		} else {
			dst[k] = m.hours[i]
			for c, col := range m.chans {
				dst[k+1+c] = col[i]
			}
		}
		k += m.block
	}
	if m.includeContext {
		fillContext(dst[k:k+contextWidth], ext.Ctx[step])
		k += contextWidth
	}
	for c := range m.tgts {
		dst[k+c] = ext.Tgts[c][step]
	}
	return true
}
