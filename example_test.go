package vup_test

import (
	"fmt"
	"log"

	"vup"
	"vup/internal/canbus"
	"vup/internal/core"
)

// The quickstart flow: generate data, evaluate, forecast.
func Example() {
	fleetCfg := vup.SmallFleet()
	fleetCfg.Units = 3
	fleetCfg.Days = 400
	datasets, err := vup.GenerateDatasets(fleetCfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	cfg := vup.DefaultConfig()
	cfg.Algorithm = vup.AlgLasso
	cfg.W = 90
	cfg.K = 8
	cfg.MaxLag = 21
	cfg.Stride = 10
	cfg.Channels = []string{canbus.ChanFuelRate}

	res, err := vup.Evaluate(datasets[0], cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vehicle %s evaluated over %d days\n", res.VehicleID, len(res.Predictions))
	// Output:
	// vehicle veh-0000 evaluated over 31 days
}

// Bucketing hours into the discrete usage levels of the future-work
// classification extension.
func ExampleLevelOf() {
	for _, hours := range []float64{0, 2.5, 5, 12} {
		fmt.Printf("%.1fh -> %s\n", hours, vup.LevelOf(hours))
	}
	// Output:
	// 0.0h -> idle
	// 2.5h -> light
	// 5.0h -> regular
	// 12.0h -> heavy
}

// The paper's Percentage Error metric.
func ExamplePE() {
	pe, err := core.PE([]float64{4, 2}, []float64{5, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PE = %.1f%%\n", pe)
	// Output:
	// PE = 33.3%
}

// Deterministic regeneration of a paper figure.
func ExampleRunExperiment() {
	cfg := vup.SmallExperiments()
	cfg.Units = 12
	cfg.Days = 400
	rep, err := vup.RunExperiment("fig3", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.ID, "-", rep.Tables[0].Name)
	// Output:
	// fig3 - fig3_windows
}
