package vup

import (
	"bytes"
	"math"
	"testing"

	"vup/internal/canbus"
)

// smallConfig trims the pipeline for test runtime.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Algorithm = AlgLasso
	cfg.W = 90
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Stride = 10
	cfg.Channels = []string{canbus.ChanFuelRate}
	return cfg
}

func smallDatasets(t *testing.T, n int) []*Dataset {
	t.Helper()
	fc := SmallFleet()
	fc.Units = n
	fc.Days = 400
	ds, err := GenerateDatasets(fc, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateDatasets(t *testing.T) {
	ds := smallDatasets(t, 5)
	if len(ds) != 5 {
		t.Fatalf("datasets = %d", len(ds))
	}
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		if d.Len() != 400 {
			t.Fatalf("len = %d", d.Len())
		}
	}
}

func TestEvaluateAndForecast(t *testing.T) {
	ds := smallDatasets(t, 3)
	cfg := smallConfig()
	res, err := Evaluate(ds[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PE) || len(res.Predictions) == 0 {
		t.Fatalf("result = %+v", res)
	}
	hours, lags, err := Forecast(ds[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hours < 0 || hours > 24 || len(lags) == 0 {
		t.Errorf("forecast = %v lags %v", hours, lags)
	}
}

func TestEvaluateFleetFacade(t *testing.T) {
	ds := smallDatasets(t, 4)
	fr, err := EvaluateFleet(ds, smallConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if fr.MeanPE <= 0 {
		t.Errorf("MeanPE = %v", fr.MeanPE)
	}
}

func TestFacadeConstants(t *testing.T) {
	if len(Algorithms()) != 6 {
		t.Error("algorithm count wrong")
	}
	if NextDay.String() != "next-day" || NextWorkingDay.String() != "next-working-day" {
		t.Error("scenario constants wrong")
	}
	if Sliding.String() != "sliding" || Expanding.String() != "expanding" {
		t.Error("strategy constants wrong")
	}
	m, err := NewRegressor(AlgGB)
	if err != nil || m.Name() != "GB" {
		t.Errorf("NewRegressor = %v %v", m, err)
	}
	if StudyFleet().Units != 2239 {
		t.Error("study fleet size wrong")
	}
	if len(Experiments()) != 16 {
		t.Errorf("experiments = %v", Experiments())
	}
}

func TestSaveLoadModelFacade(t *testing.T) {
	ds := smallDatasets(t, 1)
	m, err := NewRegressor(AlgLasso)
	if err != nil {
		t.Fatal(err)
	}
	// Train on a simple matrix derived from the dataset hours.
	var x [][]float64
	var y []float64
	for i := 7; i < ds[0].Len(); i++ {
		x = append(x, []float64{ds[0].Hours[i-1], ds[0].Hours[i-7]})
		y = append(y, ds[0].Hours[i])
	}
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Predict([]float64{3, 4})
	got, err := loaded.Predict([]float64{3, 4})
	if err != nil || got != want {
		t.Errorf("round trip: %v vs %v (%v)", got, want, err)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	cfg := SmallExperiments()
	cfg.Units = 12
	cfg.Days = 400
	rep, err := RunExperiment("fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig2" || rep.Text == "" {
		t.Errorf("report = %+v", rep)
	}
	if FullExperiments().Units != 2239 {
		t.Error("full experiments scale wrong")
	}
}
