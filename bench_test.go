package vup

import (
	"fmt"
	"testing"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/experiments"
	"vup/internal/featsel"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
)

// The benchmarks regenerate every table and figure of the paper at a
// reduced scale (experiments.Tiny), plus the Section 4.5 per-algorithm
// training-time comparison at the paper's recommended settings. Run
// the full-scale regeneration with `go run ./cmd/vup-experiments
// -scale full`.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Tiny()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig1aCharacterization(b *testing.B) { benchExperiment(b, "fig1a") }
func BenchmarkFig1bModelBoxplots(b *testing.B)    { benchExperiment(b, "fig1b") }
func BenchmarkFig1cUnitBoxplots(b *testing.B)     { benchExperiment(b, "fig1c") }
func BenchmarkFig1dWeeklySeries(b *testing.B)     { benchExperiment(b, "fig1d") }
func BenchmarkFig2ACF(b *testing.B)               { benchExperiment(b, "fig2") }
func BenchmarkFig3WindowEnumeration(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4ParameterSweep(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5NextDay(b *testing.B)           { benchExperiment(b, "fig5a") }
func BenchmarkFig5NextWorkingDay(b *testing.B)    { benchExperiment(b, "fig5b") }
func BenchmarkFig6Prediction(b *testing.B)        { benchExperiment(b, "fig6a") }
func BenchmarkTimingTable(b *testing.B)           { benchExperiment(b, "timing") }

// benchTrainingData builds one training matrix at the paper's
// recommended settings (w=140, K=20) on a 4-year unit.
func benchTrainingData(b *testing.B) ([][]float64, []float64) {
	b.Helper()
	rng := randx.New(1)
	v := fleet.Vehicle{ID: "bench", Model: fleet.Model{Type: fleet.RefuseCompactor, Index: 0}, Country: "IT"}
	u := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, 1, rng.Split())}
	usage := u.Model.Simulate(fleet.StudyStart, fleet.StudyDays)
	d, err := etl.FromUsage(u, usage, rng.Split())
	if err != nil {
		b.Fatal(err)
	}
	n := d.Len()
	lags := featsel.SelectLags(d.Hours[n-140:], 42, 20)
	spec := featsel.Spec{
		Lags:           lags,
		Channels:       canbus.AnalogChannels(),
		IncludeHours:   true,
		IncludeContext: true,
	}
	x, y, _, err := spec.Matrix(d, n-140, n)
	if err != nil {
		b.Fatal(err)
	}
	return x, y
}

// benchAlgorithm measures one model fit at the paper's settings — the
// Section 4.5 comparison. The expected ordering is
// LV < MA < LR ≈ Lasso < SVR < GB.
func benchAlgorithm(b *testing.B, alg regress.Algorithm) {
	x, y := benchTrainingData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := regress.New(alg)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmLV(b *testing.B)    { benchAlgorithm(b, regress.AlgLastValue) }
func BenchmarkAlgorithmMA(b *testing.B)    { benchAlgorithm(b, regress.AlgMovingAverage) }
func BenchmarkAlgorithmLR(b *testing.B)    { benchAlgorithm(b, regress.AlgLinear) }
func BenchmarkAlgorithmLasso(b *testing.B) { benchAlgorithm(b, regress.AlgLasso) }
func BenchmarkAlgorithmSVR(b *testing.B)   { benchAlgorithm(b, regress.AlgSVR) }
func BenchmarkAlgorithmGB(b *testing.B)    { benchAlgorithm(b, regress.AlgGB) }

// BenchmarkEvaluateVehicle measures the full per-vehicle hold-out
// evaluation (feature selection + training per window) at a reduced
// stride.
func BenchmarkEvaluateVehicle(b *testing.B) {
	fc := SmallFleet()
	fc.Units = 1
	fc.Days = 500
	ds, err := GenerateDatasets(fc, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Algorithm = AlgLasso
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Stride = 10
	cfg.Channels = []string{canbus.ChanFuelRate}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EvaluateVehicle(ds[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForecast measures a single next-day forecast, the
// operation a fleet dashboard performs per vehicle per day.
func BenchmarkForecast(b *testing.B) {
	fc := SmallFleet()
	fc.Units = 1
	fc.Days = 400
	ds, err := GenerateDatasets(fc, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Algorithm = AlgSVR
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Channels = []string{canbus.ChanFuelRate}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Forecast(ds[0], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGeneration measures the synthetic substrate: fleet
// generation plus the daily ETL for a small fleet.
func BenchmarkDatasetGeneration(b *testing.B) {
	fc := SmallFleet()
	fc.Units = 10
	fc.Days = 365
	for i := 0; i < b.N; i++ {
		ds, err := GenerateDatasets(fc, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds) != 10 {
			b.Fatal("wrong fleet size")
		}
	}
}

// Example-style sanity check that the benchmark harness settings are
// the paper's: printed once under -v.
func TestBenchSettingsMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.W != 140 || cfg.K != 20 {
		t.Fatalf("defaults drifted: w=%d K=%d", cfg.W, cfg.K)
	}
	fmt.Printf("paper settings: w=%d K=%d algorithm=%s\n", cfg.W, cfg.K, cfg.Algorithm)
}
