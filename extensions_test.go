package vup

import (
	"math"
	"testing"
)

func TestSimulateWeatherFacade(t *testing.T) {
	wx, err := SimulateWeather("IT", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wx) != 100 {
		t.Fatalf("len = %d", len(wx))
	}
	for _, d := range wx {
		if d.PrecipMM < 0 || math.IsNaN(d.TempC) {
			t.Fatalf("bad day %+v", d)
		}
	}
}

func TestGenerateWeatherDatasets(t *testing.T) {
	fc := SmallFleet()
	fc.Units = 4
	fc.Days = 400
	ds, err := GenerateWeatherDatasets(fc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 4 {
		t.Fatalf("datasets = %d", len(ds))
	}
	for _, d := range ds {
		if _, ok := d.Channels[WeatherTempChannel]; !ok {
			t.Fatal("weather temp channel missing")
		}
		if _, ok := d.Channels[WeatherPrecipChannel]; !ok {
			t.Fatal("weather precip channel missing")
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestForecastWithFacade(t *testing.T) {
	fc := SmallFleet()
	fc.Units = 2
	fc.Days = 450
	ds, err := GenerateWeatherDatasets(fc, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.TargetChannels = []string{WeatherTempChannel, WeatherPrecipChannel}
	hours, lags, err := ForecastWith(ds[0], cfg, map[string]float64{
		WeatherTempChannel:   15,
		WeatherPrecipChannel: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hours < 0 || hours > 24 || len(lags) == 0 {
		t.Errorf("forecast = %v %v", hours, lags)
	}
}

func TestLevelFacade(t *testing.T) {
	if LevelOf(0) != LevelIdle || LevelOf(2) != LevelLight ||
		LevelOf(5) != LevelRegular || LevelOf(10) != LevelHeavy {
		t.Error("level thresholds wrong")
	}
	ds := smallDatasets(t, 1)
	cfg := smallConfig()
	res, err := EvaluateLevels(ds[0], cfg, "Tree")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 || res.Confusion.Total() == 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestWeatherHurtsPaversMoreThanCompactors(t *testing.T) {
	// Sanity of the weather coupling through the public API: on rainy
	// days the paver works less relative to its dry days than the
	// refuse compactor does.
	fc := SmallFleet()
	fc.Units = 80
	fc.Days = 500
	ds, err := GenerateWeatherDatasets(fc, 5)
	if err != nil {
		t.Fatal(err)
	}
	activityRatio := func(typeName string) float64 {
		var rainyActive, rainyTotal, dryActive, dryTotal float64
		for _, d := range ds {
			if d.Type.String() != typeName {
				continue
			}
			precip := d.Channels[WeatherPrecipChannel]
			for i, h := range d.Hours {
				if precip[i] >= 5 {
					rainyTotal++
					if h > 0 {
						rainyActive++
					}
				} else if precip[i] == 0 {
					dryTotal++
					if h > 0 {
						dryActive++
					}
				}
			}
		}
		if rainyTotal == 0 || dryTotal == 0 || dryActive == 0 {
			return math.NaN()
		}
		return (rainyActive / rainyTotal) / (dryActive / dryTotal)
	}
	paver := activityRatio("paver")
	compactor := activityRatio("refuse compactor")
	if math.IsNaN(paver) || math.IsNaN(compactor) {
		t.Skip("fleet draw lacks one of the types")
	}
	if paver >= compactor {
		t.Errorf("paver rain ratio (%v) not below compactor (%v)", paver, compactor)
	}
}
