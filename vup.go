// Package vup (Vehicle Usage Prediction) is the public facade of this
// repository's reproduction of "Heterogeneous Industrial Vehicle Usage
// Predictions: A Real Case" (EDBT/ICDT Workshops 2019).
//
// The library predicts the daily utilization hours of industrial and
// construction vehicles from CAN bus telematics enriched with
// contextual information. Per vehicle, it generates training data with
// a sliding window, selects the K most autocorrelated lags, trains one
// of six regression models (LV, MA, LR, Lasso, SVR, GB) and evaluates
// the Percentage Error under sliding- or expanding-window hold-out.
//
// Because the study's industrial dataset is proprietary, the library
// ships a statistically calibrated synthetic fleet (see internal/fleet
// and DESIGN.md) plus the full telematics substrate — CAN frames,
// J1939-style signal packing, 10-minute report aggregation, lossy
// uplink and the five-step ETL pipeline — so the entire methodology
// runs end to end.
//
// Quickstart:
//
//	ds, _ := vup.GenerateDatasets(vup.SmallFleet(), 1)
//	cfg := vup.DefaultConfig()
//	cfg.Algorithm = vup.AlgGB
//	res, _ := vup.Evaluate(ds[0], cfg)
//	fmt.Printf("PE = %.1f%%\n", res.PE)
//	next, _, _ := vup.Forecast(ds[0], cfg)
package vup

import (
	"io"

	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/experiments"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
	"vup/internal/timeseries"
)

// Re-exported types. The aliases keep the full method sets available
// through the facade.
type (
	// Dataset is a per-vehicle daily relation of utilization hours,
	// CAN channel aggregates and contextual features.
	Dataset = etl.VehicleDataset
	// Config parameterizes the prediction pipeline.
	Config = core.Config
	// Result is a per-vehicle evaluation outcome.
	Result = core.Result
	// FleetResult aggregates per-vehicle evaluations.
	FleetResult = core.FleetResult
	// Prediction is one evaluated test day.
	Prediction = core.Prediction
	// Scenario selects next-day or next-working-day prediction.
	Scenario = core.Scenario
	// Algorithm identifies a regression algorithm.
	Algorithm = regress.Algorithm
	// Regressor is the supervised regression interface.
	Regressor = regress.Regressor
	// FleetConfig parameterizes synthetic fleet generation.
	FleetConfig = fleet.Config
	// Strategy selects the sliding or expanding training window.
	Strategy = timeseries.Strategy
	// ExperimentConfig scales an experiment run.
	ExperimentConfig = experiments.Config
	// ExperimentReport is a regenerated figure or table.
	ExperimentReport = experiments.Report
)

// Scenarios.
const (
	NextDay        = core.NextDay
	NextWorkingDay = core.NextWorkingDay
)

// Window strategies.
const (
	Sliding   = timeseries.Sliding
	Expanding = timeseries.Expanding
)

// Algorithms compared in the paper.
const (
	AlgLastValue     = regress.AlgLastValue
	AlgMovingAverage = regress.AlgMovingAverage
	AlgLinear        = regress.AlgLinear
	AlgLasso         = regress.AlgLasso
	AlgSVR           = regress.AlgSVR
	AlgGB            = regress.AlgGB
)

// DefaultConfig returns the paper's recommended pipeline settings
// (SVR, K=20, w=140, sliding window, next-day scenario).
func DefaultConfig() Config { return core.DefaultConfig() }

// Algorithms returns the six algorithms of the paper's comparison.
func Algorithms() []Algorithm { return regress.Algorithms() }

// NewRegressor constructs a regressor with the paper's defaults.
func NewRegressor(a Algorithm) (Regressor, error) { return regress.New(a) }

// SaveModel serializes a trained regressor as JSON, so forecasts can
// be served without refitting.
func SaveModel(w io.Writer, m Regressor) error { return regress.Save(w, m) }

// LoadModel reads a model saved by SaveModel, ready to predict.
func LoadModel(r io.Reader) (Regressor, error) { return regress.Load(r) }

// StudyFleet returns the full study-scale fleet configuration:
// 2 239 vehicles observed 2015-01-01 to 2018-09-30.
func StudyFleet() FleetConfig { return fleet.DefaultConfig() }

// SmallFleet returns a laptop-scale fleet configuration for examples
// and experimentation.
func SmallFleet() FleetConfig { return fleet.SmallConfig() }

// GenerateDatasets generates a synthetic fleet and builds the
// per-vehicle daily dataset for every unit. seed drives the per-day
// sensor noise independently of the fleet seed.
func GenerateDatasets(cfg FleetConfig, seed int64) ([]*Dataset, error) {
	f, err := fleet.Generate(cfg)
	if err != nil {
		return nil, err
	}
	usage := f.SimulateAll()
	rng := randx.New(seed)
	out := make([]*Dataset, 0, len(f.Units))
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// Evaluate runs the hold-out evaluation on one vehicle.
func Evaluate(d *Dataset, cfg Config) (*Result, error) {
	return core.EvaluateVehicle(d, cfg)
}

// EvaluateFleet evaluates every dataset concurrently and aggregates
// the per-vehicle Percentage Errors.
func EvaluateFleet(ds []*Dataset, cfg Config, workers int) (*FleetResult, error) {
	return core.EvaluateFleet(ds, cfg, workers)
}

// Forecast trains on the most recent window and predicts the next
// (working) day's utilization hours.
func Forecast(d *Dataset, cfg Config) (hours float64, lags []int, err error) {
	return core.Forecast(d, cfg)
}

// Experiments returns the IDs of every reproducible figure/table.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's figures or tables.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentReport, error) {
	return experiments.Run(id, cfg)
}

// SmallExperiments returns the laptop-scale experiment configuration.
func SmallExperiments() ExperimentConfig { return experiments.Small() }

// FullExperiments returns the study-scale experiment configuration.
func FullExperiments() ExperimentConfig { return experiments.Full() }
