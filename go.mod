module vup

go 1.22
