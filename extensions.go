package vup

// Facade surface for the paper's future-work extensions: weather
// enrichment and discrete usage-level classification.

import (
	"vup/internal/classify"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/weather"
)

// Re-exported extension types.
type (
	// WeatherDay is one day of site weather.
	WeatherDay = weather.Day
	// Level is a discrete daily usage bucket.
	Level = classify.Level
	// LevelResult is a usage-level classification evaluation.
	LevelResult = classify.Result
)

// Usage levels.
const (
	LevelIdle    = classify.Idle
	LevelLight   = classify.Light
	LevelRegular = classify.Regular
	LevelHeavy   = classify.Heavy
)

// Weather channel names (attachable as Config.TargetChannels).
const (
	WeatherTempChannel   = weather.ChanTemp
	WeatherPrecipChannel = weather.ChanPrecip
)

// LevelOf buckets daily utilization hours into a usage level.
func LevelOf(hours float64) Level { return classify.LevelOf(hours) }

// SimulateWeather generates a deterministic daily weather series for
// the given country.
func SimulateWeather(countryCode string, days int, seed int64) ([]WeatherDay, error) {
	return weather.NewGenerator(countryCode, seed).Simulate(fleet.StudyStart, days)
}

// GenerateWeatherDatasets generates a fleet whose usage is modulated
// by per-site weather, with the weather series attached to every
// dataset as channels — ready for Config.TargetChannels.
func GenerateWeatherDatasets(cfg FleetConfig, seed int64) ([]*Dataset, error) {
	f, err := fleet.Generate(cfg)
	if err != nil {
		return nil, err
	}
	rng := randx.New(seed)
	out := make([]*Dataset, 0, len(f.Units))
	for i, u := range f.Units {
		gen := weather.NewGenerator(u.Vehicle.Country, cfg.Seed+int64(i))
		wx, err := gen.Simulate(cfg.Start, cfg.Days)
		if err != nil {
			return nil, err
		}
		usage := u.Model.SimulateWeather(cfg.Start, cfg.Days, wx)
		d, err := etl.FromUsage(u, usage, rng.Split())
		if err != nil {
			return nil, err
		}
		if err := d.AttachWeather(wx); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// ForecastWith is Forecast with known target-day values for the
// channels in Config.TargetChannels (e.g. tomorrow's weather
// forecast).
func ForecastWith(d *Dataset, cfg Config, target map[string]float64) (float64, []int, error) {
	return core.ForecastWith(d, cfg, target)
}

// ForecastIntervalResult is a point forecast with an empirical
// confidence band.
type ForecastIntervalResult = core.Interval

// ForecastInterval produces the next-day forecast together with an
// empirical confidence band calibrated on the vehicle's hold-out
// residuals (the paper's goal iii: confidence intervals for the
// estimations).
func ForecastInterval(d *Dataset, cfg Config, level float64) (*ForecastIntervalResult, error) {
	return core.ForecastInterval(d, cfg, level)
}

// ForecastHorizon predicts the next h (working) days by iterated
// one-step forecasting; per-step target-channel values (e.g. a weather
// forecast per day) can be supplied via targets.
func ForecastHorizon(d *Dataset, cfg Config, h int, targets []map[string]float64) ([]float64, error) {
	return core.ForecastHorizon(d, cfg, h, targets)
}

// EvaluateLevels runs the hold-out evaluation with a discrete target:
// the usage level of the next (working) day, predicted by the named
// classifier ("Tree" or "Majority").
func EvaluateLevels(d *Dataset, cfg Config, classifierName string) (*LevelResult, error) {
	return classify.EvaluateVehicle(d, cfg, classifierName)
}
