// Command vup-ingest replays raw 10-minute CAN reports against a
// running vup-server, closing the paper's data loop online: the same
// deterministic fleet the server generated is extended by -extra-days
// of simulated operation, each day is run through the on-board-unit
// simulation (internal/telematics: sessions → CAN frames → decoded
// samples → 10-minute aggregate reports) and POSTed to
// /v1/vehicles/{id}/ingest.
//
// Usage:
//
//	vup-ingest -addr http://localhost:8080 -units 30 -days 600 -seed 1 \
//	    -extra-days 7 [-rate 200] [-burst 500] [-skew 50ms]
//
// -units, -days and -seed MUST match the server's generation flags:
// the usage simulation is prefix-deterministic, so the replayed days
// line up exactly after the server's stored series.
//
// The ingest endpoint appends whole days, so one POST carries all of a
// day's reports for one vehicle. -rate paces the aggregate upload in
// reports/second through a token bucket of capacity -burst (0 rate
// means unthrottled); -skew staggers vehicle start times (vehicle i
// waits i×skew) so the fleet does not phase-lock its uploads. Batches
// shed by the server's backpressure gate (503 + Retry-After) are
// retried with the advertised delay.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"vup/internal/canbus"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/telematics"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8080", "vup-server base URL")
		units     = flag.Int("units", 30, "fleet size (must match the server's -units)")
		days      = flag.Int("days", 600, "days the server generated (must match the server's -days)")
		seed      = flag.Int64("seed", 1, "generation seed (must match the server's -seed)")
		extraDays = flag.Int("extra-days", 7, "days of new operation to simulate and replay")
		rate      = flag.Float64("rate", 0, "aggregate upload pacing in reports/second; 0 = unthrottled")
		burst     = flag.Int("burst", 500, "token-bucket capacity in reports (pacing burst)")
		skew      = flag.Duration("skew", 0, "per-vehicle start stagger: vehicle i begins after i×skew")
		period    = flag.Duration("period", time.Minute, "CAN sample period inside working sessions")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		// Accept vup-server style addresses (":8080", "host:8080").
		if strings.HasPrefix(base, ":") {
			base = "localhost" + base
		}
		base = "http://" + base
	}

	start := time.Now()
	res, err := run(options{
		addr: base, units: *units, days: *days, seed: *seed,
		extraDays: *extraDays, rate: *rate, burst: *burst, skew: *skew, period: *period,
		logf: func(format string, args ...any) { _, _ = fmt.Fprintf(os.Stderr, format+"\n", args...) },
	})
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "vup-ingest:", err)
		os.Exit(1)
	}
	fmt.Printf("replayed %d reports in %d batches over %s: accepted %d, rejected %d, days appended %d, shed+retried %d\n",
		res.Reports, res.Batches, time.Since(start).Round(time.Millisecond),
		res.Accepted, res.Rejected, res.DaysAppended, res.Shed)
	if res.Errors > 0 {
		_, _ = fmt.Fprintf(os.Stderr, "vup-ingest: %d batches failed\n", res.Errors)
		os.Exit(1)
	}
}

// options parameterizes one replay; the smoke test drives run directly
// against an in-process server.
type options struct {
	addr      string
	units     int
	days      int
	seed      int64
	extraDays int
	rate      float64
	burst     int
	skew      time.Duration
	period    time.Duration
	client    *http.Client
	logf      func(format string, args ...any)
}

// tally aggregates the replay outcome across vehicle goroutines.
type tally struct {
	mu           sync.Mutex
	Batches      int
	Reports      int
	Accepted     int
	Rejected     int
	DaysAppended int
	Shed         int
	Errors       int
}

// wire mirrors the ingest endpoint's JSON report shape.
type wireChannel struct {
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

type wireReport struct {
	Start           time.Time              `json:"start"`
	EngineOnSeconds float64                `json:"engine_on_seconds"`
	Channels        map[string]wireChannel `json:"channels"`
}

type wireBatch struct {
	Reports []wireReport `json:"reports"`
}

type wireAck struct {
	Accepted     int            `json:"accepted"`
	Rejected     int            `json:"rejected"`
	Reasons      map[string]int `json:"rejected_reasons"`
	DaysAppended int            `json:"days_appended"`
}

// pacer is a token bucket over report counts: tokens refill at rate/s
// up to burst; a send of n reports debits n and sleeps off any deficit.
type pacer struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newPacer(rate float64, burst int) *pacer {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &pacer{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

func (p *pacer) wait(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	now := time.Now()
	p.tokens += now.Sub(p.last).Seconds() * p.rate
	if p.tokens > p.burst {
		p.tokens = p.burst
	}
	p.last = now
	p.tokens -= float64(n)
	var sleep time.Duration
	if p.tokens < 0 {
		sleep = time.Duration(-p.tokens / p.rate * float64(time.Second))
	}
	p.mu.Unlock()
	time.Sleep(sleep)
}

func run(o options) (*tally, error) {
	if o.extraDays <= 0 {
		return nil, fmt.Errorf("extra-days must be positive, got %d", o.extraDays)
	}
	if o.period <= 0 {
		o.period = time.Minute
	}
	if o.client == nil {
		o.client = &http.Client{Timeout: 2 * time.Minute}
	}
	logf := o.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	// Regenerate the server's fleet, grown by the replay horizon. The
	// per-day usage simulation is prefix-deterministic, so days
	// [0, o.days) are bitwise the series the server already stores and
	// [o.days, o.days+o.extraDays) are genuinely new operation.
	f, err := fleet.Generate(fleet.Config{Units: o.units, Days: o.days + o.extraDays, Seed: o.seed, Start: fleet.StudyStart})
	if err != nil {
		return nil, err
	}
	usage := f.SimulateAll()
	logf("simulating %d extra days for %d vehicles", o.extraDays, len(f.Units))

	// Device randomness split deterministically per unit, in unit order.
	devRng := randx.New(o.seed + 2)
	devices := make([]*telematics.Device, len(f.Units))
	for i, u := range f.Units {
		devices[i] = telematics.NewDevice(u.Vehicle, devRng.Split())
	}

	pace := newPacer(o.rate, o.burst)
	res := &tally{}
	var wg sync.WaitGroup
	for i, u := range f.Units {
		wg.Add(1)
		go func(i int, u fleet.Unit) {
			defer wg.Done()
			if o.skew > 0 {
				time.Sleep(time.Duration(i) * o.skew)
			}
			id := u.Vehicle.ID
			for di := o.days; di < o.days+o.extraDays; di++ {
				du := usage[id][di]
				reports, err := devices[i].SimulateDay(du.Date, du.Hours, o.period)
				if err != nil {
					logf("vehicle %s day %s: simulation failed: %v", id, du.Date.Format("2006-01-02"), err)
					res.mu.Lock()
					res.Errors++
					res.mu.Unlock()
					return
				}
				if len(reports) == 0 {
					continue // inactive day: the next upload materializes it as a gap
				}
				pace.wait(len(reports))
				ack, shed, err := postDay(o.client, o.addr, id, reports)
				res.mu.Lock()
				res.Shed += shed
				if err != nil {
					res.Errors++
					res.mu.Unlock()
					logf("vehicle %s day %s: %v", id, du.Date.Format("2006-01-02"), err)
					return
				}
				res.Batches++
				res.Reports += len(reports)
				res.Accepted += ack.Accepted
				res.Rejected += ack.Rejected
				res.DaysAppended += ack.DaysAppended
				res.mu.Unlock()
			}
		}(i, u)
	}
	wg.Wait()
	return res, nil
}

// postDay uploads one vehicle-day of reports, honouring backpressure:
// a 503 is retried after the server's Retry-After, a bounded number of
// times. It returns the server's ack and how often the batch was shed.
func postDay(client *http.Client, addr, vehicleID string, reports []canbus.Report) (*wireAck, int, error) {
	batch := wireBatch{Reports: make([]wireReport, 0, len(reports))}
	for _, r := range reports {
		wr := wireReport{
			Start:           r.Start,
			EngineOnSeconds: r.EngineOnSeconds,
			Channels:        make(map[string]wireChannel, len(r.Channels)),
		}
		for name, cs := range r.Channels {
			wr.Channels[name] = wireChannel{Samples: cs.Samples, Mean: cs.Mean, Min: cs.Min, Max: cs.Max}
		}
		batch.Reports = append(batch.Reports, wr)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return nil, 0, err
	}
	url := addr + "/v1/vehicles/" + vehicleID + "/ingest"
	shed := 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, shed, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < 8 {
			delay := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			shed++
			time.Sleep(delay)
			continue
		}
		ack, err := decodeAck(url, resp)
		if err != nil {
			return nil, shed, err
		}
		return ack, shed, nil
	}
}

// decodeAck consumes and closes one response body. Closing happens
// here, per response, rather than in postDay's retry loop, where a
// deferred Close would hold every attempt's connection until return.
func decodeAck(url string, resp *http.Response) (*wireAck, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, msg)
	}
	var ack wireAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return nil, fmt.Errorf("POST %s: decoding ack: %w", url, err)
	}
	return &ack, nil
}
