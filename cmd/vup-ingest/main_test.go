package main

import (
	"net/http/httptest"
	"testing"
	"time"

	"vup"
	"vup/internal/canbus"
	"vup/internal/regress"
	"vup/internal/server"
)

// TestReplaySmoke drives the full replay path against an in-process
// server: regenerate the fleet the server holds, simulate extra days
// of operation, upload the raw reports and verify they all land — the
// CI smoke for the CAN→forecast loop (at least 100 reports replayed).
func TestReplaySmoke(t *testing.T) {
	const (
		units = 4
		days  = 60
		seed  = int64(7)
		extra = 3
	)
	fc := vup.SmallFleet()
	fc.Units = units
	fc.Days = days
	fc.Seed = seed
	datasets, err := vup.GenerateDatasets(fc, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	store, err := server.NewStore(datasets)
	if err != nil {
		t.Fatal(err)
	}
	base := vup.DefaultConfig()
	base.Algorithm = regress.AlgLinear
	base.W = 30
	base.K = 6
	base.MaxLag = 14
	base.Stride = 10
	base.Channels = []string{canbus.ChanFuelRate}
	api := server.New(store, base)
	api.Cache = server.NewForecastCache(16)
	srv := httptest.NewServer(api.Handler())
	defer srv.Close()

	res, err := run(options{
		addr:      srv.URL,
		units:     units,
		days:      days,
		seed:      seed,
		extraDays: extra,
		period:    time.Minute,
		client:    srv.Client(),
		logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d batches failed", res.Errors)
	}
	if res.Reports < 100 {
		t.Fatalf("replayed only %d reports, want >= 100 for the smoke", res.Reports)
	}
	if res.Accepted != res.Reports {
		t.Errorf("accepted %d of %d reports (rejected %d)", res.Accepted, res.Reports, res.Rejected)
	}
	if res.DaysAppended == 0 {
		t.Fatal("no days appended")
	}

	// The store must have grown by exactly the appended days.
	total := 0
	for _, d := range datasets {
		cur, ok := store.Get(d.VehicleID)
		if !ok {
			t.Fatalf("vehicle %q vanished", d.VehicleID)
		}
		total += cur.Len() - days
		if cur.Len() < days {
			t.Errorf("vehicle %q shrank to %d days", d.VehicleID, cur.Len())
		}
	}
	if total != res.DaysAppended {
		t.Errorf("store grew by %d days, ack'd %d", total, res.DaysAppended)
	}
}
