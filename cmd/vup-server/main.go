// Command vup-server serves the prediction pipeline over HTTP for a
// generated synthetic fleet: vehicle listing, per-vehicle forecasts,
// hold-out evaluations and Prometheus metrics.
//
// Usage:
//
//	vup-server -addr :8080 -units 30 -days 600 [-debug-addr :6060]
//
// Endpoints:
//
//	GET /healthz
//	GET /metrics                                  Prometheus text format
//	GET /v1/vehicles
//	GET /v1/vehicles/{id}
//	GET /v1/vehicles/{id}/forecast?alg=SVR&scenario=next-working-day&w=140&k=20
//	GET /v1/vehicles/{id}/evaluation?alg=Lasso&stride=10
//
// With -debug-addr set, a second listener serves Go runtime
// diagnostics (opt-in, keep it off public interfaces):
//
//	GET /debug/pprof/       profiles (heap, goroutine, CPU via ?seconds=N)
//	GET /debug/vars         expvar JSON (memstats, cmdline)
package main

import (
	"context"
	"expvar"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vup"
	"vup/internal/canbus"
	"vup/internal/obs"
	"vup/internal/regress"
	"vup/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional listen address for pprof and expvar endpoints (e.g. :6060); disabled when empty")
		units     = flag.Int("units", 30, "fleet size to generate")
		days      = flag.Int("days", 600, "observation days")
		seed      = flag.Int64("seed", 1, "generation seed")
		verbose   = flag.Bool("v", false, "log at debug level")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logg := obs.NewLogger(os.Stderr, level).With("component", "vup-server")

	fc := vup.SmallFleet()
	fc.Units = *units
	fc.Days = *days
	fc.Seed = *seed
	logg.Info("generating fleet", "units", *units, "days", *days, "seed", *seed)
	start := time.Now()
	datasets, err := vup.GenerateDatasets(fc, *seed+1)
	if err != nil {
		logg.Error("generation failed", "error", err)
		os.Exit(1)
	}
	logg.Info("fleet ready", "vehicles", len(datasets), "took", time.Since(start).Round(time.Millisecond))

	base := vup.DefaultConfig()
	base.Algorithm = regress.AlgLasso // responsive default; override per request
	base.W = 120
	base.K = 12
	base.MaxLag = 28
	base.Stride = 5
	base.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}

	api := server.New(server.NewStore(datasets), base)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr, logg)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logg.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			logg.Error("serve failed", "error", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logg.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logg.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
	}
}

// serveDebug exposes the Go diagnostics endpoints on their own
// listener so they never ride on the public API address.
func serveDebug(addr string, logg *obs.Logger) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	logg.Info("debug endpoints listening", "addr", addr)
	if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logg.Error("debug listener failed", "error", err)
	}
}
