// Command vup-server serves the prediction pipeline over HTTP for a
// generated synthetic fleet: vehicle listing, per-vehicle forecasts,
// hold-out evaluations and Prometheus metrics.
//
// Usage:
//
//	vup-server -addr :8080 -units 30 -days 600 [-cache-size 256] [-data-dir /var/lib/vup] [-debug-addr :6060]
//
// Forecast and evaluation responses are served from a bounded LRU
// cache of trained artifacts with request coalescing; -cache-size 0
// restores train-per-request.
//
// With -data-dir, the fleet persists across restarts in the on-disk
// store (internal/fstore): a cold boot loads the saved snapshots
// instead of regenerating, every Put snapshots the changed vehicle,
// and graceful shutdown writes a full compacting snapshot. Dataset
// fingerprints survive the round-trip bit-for-bit, so forecast-cache
// keys computed before a restart stay valid after it (warm start). A
// corrupt store is a startup error naming the file and byte offset —
// delete or restore the directory to recover.
//
// With -lazy-load the boot reads only the manifest: vehicle snapshots
// decode on first request (single-flighted per vehicle), and under
// -resident-budget cold datasets evict LRU so resident memory is
// bounded by the budget, not the fleet. A corrupt vehicle file then
// fails only that vehicle's requests, not the boot. Shutdown
// re-snapshots only dirty residents.
//
// Endpoints:
//
//	GET /healthz
//	GET /metrics                                  Prometheus text format
//	GET /v1/vehicles
//	GET /v1/vehicles/{id}
//	GET /v1/vehicles/{id}/forecast?alg=SVR&scenario=next-working-day&w=140&k=20
//	GET /v1/vehicles/{id}/forecast?horizon=7        iterated multi-step forecast
//	GET /v1/vehicles/{id}/forecast?interval=0.8     residual-calibrated band
//	GET /v1/vehicles/{id}/evaluation?alg=Lasso&stride=10
//	POST /v1/vehicles/{id}/ingest                   raw 10-minute report batches
//
// Ingested reports are summarized into whole days, repaired with
// -ingest-policy, appended durably (one fsynced append-log record per
// batch under -data-dir) and become forecast-visible with a
// per-vehicle generation bump — other vehicles' cached artifacts are
// untouched. At most -ingest-concurrency batches are in flight;
// beyond that the server sheds with 503 + Retry-After. See cmd/vup-ingest
// for a replay driver.
//
// A horizon request is derived from the same cached trained artifact
// as the plain forecast, so it never retrains a cached model; horizon
// and interval cannot be combined.
//
// Every API request runs under a root trace span whose ID is echoed in
// the X-Trace-Id response header; completed traces pass a tail sampler
// (errors and slow requests always kept, the rest at -trace-sample) and
// land in a bounded ring buffer. -trace-buffer 0 disables tracing, at
// which point the span API is an allocation-free no-op.
//
// With -debug-addr set, a second listener serves Go runtime
// diagnostics (opt-in, keep it off public interfaces):
//
//	GET /debug/pprof/       profiles (heap, goroutine, CPU via ?seconds=N)
//	GET /debug/vars         expvar JSON (memstats, cmdline)
//	GET /debug/traces       stored traces, newest first (JSON)
//	GET /debug/traces/{id}  one trace as a text waterfall (?format=json for data)
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vup"
	"vup/internal/canbus"
	"vup/internal/etl"
	"vup/internal/fstore"
	"vup/internal/obs"
	"vup/internal/obs/trace"
	"vup/internal/regress"
	"vup/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		debugAddr      = flag.String("debug-addr", "", "optional listen address for pprof, expvar and trace endpoints (e.g. :6060); disabled when empty")
		units          = flag.Int("units", 30, "fleet size to generate")
		days           = flag.Int("days", 600, "observation days")
		seed           = flag.Int64("seed", 1, "generation seed")
		cacheSize      = flag.Int("cache-size", 256, "trained-forecast cache capacity in entries; 0 disables caching and request coalescing")
		dataDir        = flag.String("data-dir", "", "fleet store directory; loads the saved fleet on boot (generating and saving one on first run) and persists changes; empty keeps the fleet in memory only")
		lazyLoad       = flag.Bool("lazy-load", false, "with -data-dir: boot from the manifest alone and load vehicle snapshots on first request instead of decoding the whole fleet")
		residentBudget = flag.Int64("resident-budget", 0, "with -lazy-load: evict cold vehicle datasets once their estimated resident bytes exceed this budget; 0 keeps everything loaded so far")
		compactEvery   = flag.Int("compact-threshold", 64, "with -data-dir: fold a vehicle's append-log backlog into its snapshot once it reaches this many records; 0 disables compaction")
		ingestPolicy   = flag.String("ingest-policy", "forward-fill", "missing-day repair for ingested gap days: zero, forward-fill or interpolate")
		ingestConc     = flag.Int("ingest-concurrency", 4, "concurrent ingest batches admitted before shedding with 503")
		traceBuffer    = flag.Int("trace-buffer", 256, "stored-trace ring buffer capacity behind /debug/traces; 0 disables tracing")
		traceSample    = flag.Float64("trace-sample", 0.1, "tail-sampling keep probability for fast, clean traces (errors and slow requests are always kept; >=1 keeps everything)")
		traceSlow      = flag.Duration("trace-slow", 100*time.Millisecond, "root latency at or above which a trace is always kept")
		verbose        = flag.Bool("v", false, "log at debug level")
	)
	flag.Parse()

	level := obs.LevelInfo
	if *verbose {
		level = obs.LevelDebug
	}
	logg := obs.NewLogger(os.Stderr, level).With("component", "vup-server")

	if *lazyLoad && *dataDir == "" {
		logg.Error("-lazy-load requires -data-dir")
		os.Exit(1)
	}
	var dir *fstore.Dir
	var datasets []*etl.VehicleDataset
	var lazyIDs []string
	if *dataDir != "" {
		var err error
		dir, err = fstore.Open(*dataDir)
		if err != nil {
			logg.Error("fleet store open failed", "dir", *dataDir, "error", err)
			os.Exit(1)
		}
		start := time.Now()
		if *lazyLoad {
			// Manifest-only boot: the roster comes from Open's manifest
			// read; no VUPD snapshot is decoded until a request asks
			// for its vehicle.
			lazyIDs = dir.VehicleIDs()
			if len(lazyIDs) > 0 {
				logg.Info("fleet store indexed for lazy load", "dir", *dataDir, "vehicles", len(lazyIDs), "took", time.Since(start).Round(time.Millisecond))
			} else {
				logg.Info("fleet store empty, generating", "dir", *dataDir)
			}
		} else {
			loaded, man, err := dir.Load()
			switch {
			case err == nil:
				datasets = loaded
				logg.Info("fleet loaded from store", "dir", *dataDir, "vehicles", len(man.Vehicles), "took", time.Since(start).Round(time.Millisecond))
			case errors.Is(err, fstore.ErrNoManifest):
				logg.Info("fleet store empty, generating", "dir", *dataDir)
			default:
				// A corrupt store must stop the boot, not silently fall back
				// to a regenerated fleet with different fingerprints.
				logg.Error("fleet store load failed", "dir", *dataDir, "error", err)
				os.Exit(1)
			}
		}
	}
	if datasets == nil && len(lazyIDs) == 0 {
		fc := vup.SmallFleet()
		fc.Units = *units
		fc.Days = *days
		fc.Seed = *seed
		logg.Info("generating fleet", "units", *units, "days", *days, "seed", *seed)
		start := time.Now()
		var err error
		datasets, err = vup.GenerateDatasets(fc, *seed+1)
		if err != nil {
			logg.Error("generation failed", "error", err)
			os.Exit(1)
		}
		logg.Info("fleet ready", "vehicles", len(datasets), "took", time.Since(start).Round(time.Millisecond))
		if dir != nil {
			if _, err := dir.Save(datasets); err != nil {
				logg.Error("fleet store save failed", "dir", *dataDir, "error", err)
				os.Exit(1)
			}
			logg.Info("fleet saved to store", "dir", *dataDir, "vehicles", len(datasets))
			if *lazyLoad {
				// Hand the generated fleet back to the lazy path so the
				// serving store is the same either way.
				lazyIDs = dir.VehicleIDs()
				datasets = nil
			}
		}
	}

	base := vup.DefaultConfig()
	base.Algorithm = regress.AlgLasso // responsive default; override per request
	base.W = 120
	base.K = 12
	base.MaxLag = 28
	base.Stride = 5
	base.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}

	var store *server.Store
	var err error
	if len(lazyIDs) > 0 {
		store, err = server.NewLazyStore(lazyIDs, dir.LoadVehicle, *residentBudget)
		if err == nil {
			logg.Info("lazy store ready", "vehicles", len(lazyIDs), "resident_budget", *residentBudget)
		}
	} else {
		store, err = server.NewStore(datasets)
	}
	if err != nil {
		logg.Error("store rejected datasets", "error", err)
		os.Exit(1)
	}
	if dir != nil {
		// Every Put snapshots the changed vehicle before it becomes
		// visible; a full compacting snapshot runs at shutdown. Ingested
		// batches take the cheaper path: one fsynced append-log record
		// per batch, replayed over the snapshot at the next boot — and
		// folded into the vehicle's snapshot once the backlog passes
		// -compact-threshold, so a long-ingesting vehicle never replays
		// an unbounded log.
		store.SetPersister(dir.SaveVehicle)
		store.SetAppender(dir.Append)
		if *compactEvery > 0 {
			threshold := *compactEvery
			store.SetCompactor(func(d *etl.VehicleDataset) (bool, error) {
				return dir.MaybeCompact(d, threshold)
			})
		}
	}
	api := server.New(store, base)
	api.Cache = server.NewForecastCache(*cacheSize)
	switch *ingestPolicy {
	case "zero":
		api.IngestPolicy = etl.MissingZero
	case "forward-fill":
		api.IngestPolicy = etl.MissingForwardFill
	case "interpolate":
		api.IngestPolicy = etl.MissingInterpolate
	default:
		logg.Error("unknown -ingest-policy", "policy", *ingestPolicy)
		os.Exit(1)
	}
	api.IngestConcurrency = *ingestConc
	logg.Info("forecast cache", "capacity", *cacheSize, "enabled", api.Cache.Enabled())
	if *traceBuffer > 0 {
		api.Traces = trace.NewCollector(trace.Options{
			Capacity:      *traceBuffer,
			SampleRate:    *traceSample,
			SlowThreshold: *traceSlow,
			Seed:          *seed,
		})
		logg.Info("request tracing", "buffer", *traceBuffer, "sample", *traceSample, "slow", *traceSlow)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Evaluations retrain per window and can legitimately run for
		// minutes at stride 1; the write timeout bounds a wedged
		// client, not a slow handler.
		WriteTimeout: 5 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}

	var dbg *http.Server
	if *debugAddr != "" {
		dbg = newDebugServer(*debugAddr, api.Traces)
		go func() {
			logg.Info("debug endpoints listening", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logg.Error("debug listener failed", "error", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logg.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			logg.Error("serve failed", "error", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logg.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logg.Error("shutdown failed", "error", err)
			os.Exit(1)
		}
		// The debug listener shares the process lifetime: shut it down
		// too instead of leaking it past the API server.
		if dbg != nil {
			if err := dbg.Shutdown(shutdownCtx); err != nil {
				logg.Error("debug shutdown failed", "error", err)
			}
		}
		if dir != nil {
			start := time.Now()
			if store.Lazy() {
				// A full Save would shrink the manifest to whatever
				// happens to be resident. Re-snapshot only the dirty
				// residents; every other vehicle's state is already
				// durable in its snapshot plus the append log.
				dirty := store.DirtyResidents()
				for _, d := range dirty {
					if err := dir.SaveVehicle(d); err != nil {
						logg.Error("shutdown snapshot failed", "vehicle", d.VehicleID, "error", err)
						os.Exit(1)
					}
				}
				logg.Info("dirty residents snapshotted", "dir", *dataDir, "vehicles", len(dirty), "took", time.Since(start).Round(time.Millisecond))
			} else {
				if _, err := dir.Save(store.Snapshot()); err != nil {
					logg.Error("shutdown snapshot failed", "dir", *dataDir, "error", err)
					os.Exit(1)
				}
				logg.Info("fleet snapshot written", "dir", *dataDir, "took", time.Since(start).Round(time.Millisecond))
			}
			if err := dir.Close(); err != nil {
				logg.Error("fleet store close failed", "dir", *dataDir, "error", err)
				os.Exit(1)
			}
		}
	}
}

// newDebugServer exposes the Go diagnostics endpoints — and, when
// tracing is enabled, the stored request traces — on their own
// listener so they never ride on the public API address.
func newDebugServer(addr string, traces *trace.Collector) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if traces != nil {
		mux.Handle("GET /debug/traces", traces.Handler())
		mux.Handle("GET /debug/traces/{id}", traces.Handler())
	}
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		// CPU profiles stream for ?seconds=N; leave write headroom.
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
}
