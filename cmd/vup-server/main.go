// Command vup-server serves the prediction pipeline over HTTP for a
// generated synthetic fleet: vehicle listing, per-vehicle forecasts
// and hold-out evaluations.
//
// Usage:
//
//	vup-server -addr :8080 -units 30 -days 600
//
// Endpoints:
//
//	GET /healthz
//	GET /v1/vehicles
//	GET /v1/vehicles/{id}
//	GET /v1/vehicles/{id}/forecast?alg=SVR&scenario=next-working-day&w=140&k=20
//	GET /v1/vehicles/{id}/evaluation?alg=Lasso&stride=10
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vup"
	"vup/internal/canbus"
	"vup/internal/regress"
	"vup/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vup-server: ")

	var (
		addr  = flag.String("addr", ":8080", "listen address")
		units = flag.Int("units", 30, "fleet size to generate")
		days  = flag.Int("days", 600, "observation days")
		seed  = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	fc := vup.SmallFleet()
	fc.Units = *units
	fc.Days = *days
	fc.Seed = *seed
	log.Printf("generating %d vehicles x %d days...", *units, *days)
	datasets, err := vup.GenerateDatasets(fc, *seed+1)
	if err != nil {
		log.Fatal(err)
	}

	base := vup.DefaultConfig()
	base.Algorithm = regress.AlgLasso // responsive default; override per request
	base.W = 120
	base.K = 12
	base.MaxLag = 28
	base.Stride = 5
	base.Channels = []string{canbus.ChanFuelRate, canbus.ChanEngineSpeed}

	api := server.New(server.NewStore(datasets), base)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("shutting down...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
	}
}
