// Command vupredict trains the paper's pipeline on one synthetic
// vehicle, reports its hold-out Percentage Error and forecasts the
// next (working) day's utilization hours.
//
// Usage:
//
//	vupredict -vehicle 3 -alg SVR -scenario next-working-day
//	vupredict -alg GB -w 140 -k 20 -days 1369
package main

import (
	"flag"
	"fmt"
	"log"

	"vup"
	"vup/internal/core"
	"vup/internal/regress"
	"vup/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vupredict: ")

	var (
		vehicle  = flag.Int("vehicle", 0, "vehicle index within the generated fleet")
		units    = flag.Int("units", 20, "fleet size to generate")
		days     = flag.Int("days", 730, "observation days")
		seed     = flag.Int64("seed", 1, "generation seed")
		alg      = flag.String("alg", "SVR", "algorithm: LV, MA, LR, Lasso, SVR, GB")
		scenario = flag.String("scenario", "next-day", "next-day or next-working-day")
		strategy = flag.String("strategy", "sliding", "sliding or expanding")
		w        = flag.Int("w", 140, "training window days")
		k        = flag.Int("k", 20, "selected lags (feature selection)")
		stride   = flag.Int("stride", 5, "evaluate every stride-th day")
		horizon  = flag.Int("horizon", 1, "forecast this many days ahead")
	)
	flag.Parse()

	fc := vup.SmallFleet()
	fc.Units = *units
	fc.Days = *days
	fc.Seed = *seed
	datasets, err := vup.GenerateDatasets(fc, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	if *vehicle < 0 || *vehicle >= len(datasets) {
		log.Fatalf("vehicle %d outside fleet of %d", *vehicle, len(datasets))
	}
	d := datasets[*vehicle]

	cfg := vup.DefaultConfig()
	cfg.Algorithm = regress.Algorithm(*alg)
	cfg.W = *w
	cfg.K = *k
	cfg.Stride = *stride
	switch *scenario {
	case "next-day":
		cfg.Scenario = core.NextDay
	case "next-working-day":
		cfg.Scenario = core.NextWorkingDay
	default:
		log.Fatalf("unknown scenario %q", *scenario)
	}
	switch *strategy {
	case "sliding":
		cfg.Strategy = timeseries.Sliding
	case "expanding":
		cfg.Strategy = timeseries.Expanding
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}

	fmt.Printf("vehicle %s  type=%s model=%s country=%s days=%d\n",
		d.VehicleID, d.Type, d.ModelID, d.Country, d.Len())

	res, err := vup.Evaluate(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hold-out (%s, %s, %s): PE=%.1f%% MAE=%.2fh over %d predictions (%d windows skipped)\n",
		cfg.Algorithm, cfg.Scenario, cfg.Strategy, res.PE, res.MAE, len(res.Predictions), res.SkippedWindows)

	last := res.Predictions
	if len(last) > 7 {
		last = last[len(last)-7:]
	}
	fmt.Println("most recent evaluated days:")
	for _, p := range last {
		fmt.Printf("  %s  actual=%5.2fh  predicted=%5.2fh\n", p.Date.Format("Mon 2006-01-02"), p.Actual, p.Predicted)
	}

	hours, lags, err := vup.Forecast(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forecast for the next %s: %.2f hours (lags %v)\n", cfg.Scenario, hours, lags)

	if *horizon > 1 {
		preds, err := vup.ForecastHorizon(d, cfg, *horizon, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-step horizon:", *horizon)
		for _, p := range preds {
			fmt.Printf(" %.1f", p)
		}
		fmt.Println(" hours")
	}
}
