// Command fleetgen generates the synthetic industrial-vehicle dataset
// and writes it as CSV in the study's relational format: one row per
// vehicle-day with utilization hours, CAN channel aggregates and
// contextual features — and/or as a binary fleet store directory that
// vup-server -data-dir boots from directly.
//
// Usage:
//
//	fleetgen -units 60 -days 730 -seed 1 -out fleet.csv
//	fleetgen -scale full -out fleet.csv   # the full 2 239-vehicle study
//	fleetgen -units 60 -out "" -store-dir ./fleetdata   # binary store only
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/fstore"
	"vup/internal/randx"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetgen: ")

	var (
		units    = flag.Int("units", 60, "number of vehicles")
		days     = flag.Int("days", 730, "observation days starting 2015-01-01")
		seed     = flag.Int64("seed", 1, "generation seed")
		scale    = flag.String("scale", "custom", `"custom" (use -units/-days) or "full" (the study's 2 239 vehicles over 1 369 days)`)
		out      = flag.String("out", "fleet.csv", `output CSV path (- for stdout, "" to skip CSV)`)
		storeDir = flag.String("store-dir", "", "also save the fleet as a binary store directory (internal/fstore) that vup-server -data-dir boots from")
		verify   = flag.Bool("verify", false, "after saving -store-dir, reopen it from the manifest alone and lazily load every vehicle back, checking fingerprints")
	)
	flag.Parse()

	cfg := fleet.Config{Units: *units, Days: *days, Seed: *seed, Start: fleet.StudyStart}
	if *scale == "full" {
		cfg = fleet.DefaultConfig()
		cfg.Seed = *seed
	}

	if *out == "" && *storeDir == "" {
		log.Fatal("nothing to do: both -out and -store-dir are empty")
	}
	if *verify && *storeDir == "" {
		log.Fatal("-verify needs -store-dir")
	}
	if err := run(cfg, *out, *storeDir); err != nil {
		log.Fatal(err)
	}
	if *verify {
		if err := verifyStore(*storeDir); err != nil {
			log.Fatal(err)
		}
	}
}

// verifyStore reopens a just-written store the way a lazy vup-server
// would: manifest-only boot, then one LoadVehicle per manifest entry.
// Fingerprints are re-verified against the manifest inside LoadVehicle,
// so a clean pass proves every vehicle file decodes and round-trips
// bit-for-bit. It also reports the SizeBytes residency estimate the
// server's -resident-budget accountant would charge for the full fleet.
func verifyStore(storeDir string) error {
	dir, err := fstore.Open(storeDir)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	defer dir.Close()

	ids := dir.VehicleIDs()
	if len(ids) == 0 {
		return fmt.Errorf("verify: store %s has no manifest entries", storeDir)
	}
	var total int64
	for _, id := range ids {
		d, err := dir.LoadVehicle(id)
		if err != nil {
			return fmt.Errorf("verify: %w", err)
		}
		total += d.SizeBytes()
	}
	_, _ = fmt.Fprintf(os.Stderr, "fleetgen: verified %d vehicles via lazy load; full-fleet residency estimate %d bytes (%.1f MiB)\n",
		len(ids), total, float64(total)/(1<<20))
	return nil
}

func run(cfg fleet.Config, out, storeDir string) error {
	f, err := fleet.Generate(cfg)
	if err != nil {
		return err
	}
	usage := f.SimulateAll()
	rng := randx.New(cfg.Seed + 1)

	datasets := make([]*etl.VehicleDataset, 0, len(f.Units))
	for _, u := range f.Units {
		d, err := etl.FromUsage(u, usage[u.Vehicle.ID], rng.Split())
		if err != nil {
			return fmt.Errorf("building dataset for %s: %w", u.Vehicle.ID, err)
		}
		datasets = append(datasets, d)
	}

	if out != "" {
		if err := writeCSV(datasets, out); err != nil {
			return err
		}
	}
	if storeDir != "" {
		dir, err := fstore.Open(storeDir)
		if err != nil {
			return err
		}
		if _, err := dir.Save(datasets); err != nil {
			return err
		}
		if err := dir.Close(); err != nil {
			return err
		}
		_, _ = fmt.Fprintf(os.Stderr, "fleetgen: saved %d vehicles to store %s\n", len(datasets), storeDir)
	}
	return nil
}

func writeCSV(datasets []*etl.VehicleDataset, out string) (err error) {
	w := bufio.NewWriter(os.Stdout)
	if out != "-" {
		file, cerr := os.Create(out)
		if cerr != nil {
			return cerr
		}
		// Close is where the final buffered write can fail; losing that
		// error would truncate the CSV silently.
		defer func() {
			if closeErr := file.Close(); closeErr != nil && err == nil {
				err = closeErr
			}
		}()
		w = bufio.NewWriter(file)
	}
	// Registered after the Close defer so the flush runs first.
	defer func() {
		if flushErr := w.Flush(); flushErr != nil && err == nil {
			err = flushErr
		}
	}()

	wroteHeader := false
	rows := 0
	for _, d := range datasets {
		tab, err := d.ToTable()
		if err != nil {
			return err
		}
		if wroteHeader {
			err = tab.WriteCSVRows(w)
		} else {
			err = tab.WriteCSV(w)
			wroteHeader = true
		}
		if err != nil {
			return err
		}
		rows += tab.Rows()
	}
	_, _ = fmt.Fprintf(os.Stderr, "fleetgen: wrote %d vehicle-day rows for %d vehicles\n", rows, len(datasets))
	return nil
}
