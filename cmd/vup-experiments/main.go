// Command vup-experiments regenerates the paper's tables and figures
// on the synthetic fleet and prints them as ASCII charts, optionally
// writing the underlying data series as CSV files.
//
// Usage:
//
//	vup-experiments                      # every experiment, small scale
//	vup-experiments -run fig5a           # one experiment
//	vup-experiments -scale full -csv out # study scale, CSVs into out/
//	vup-experiments -list                # list experiment IDs
//	vup-experiments -run fig5a -timing   # append the per-algorithm stage
//	                                     # timing table (Section 4.5, live)
//	vup-experiments -workers 1           # sequential sweep (byte-identical
//	                                     # report, reference for timings)
//	vup-experiments -run fig5a -trace    # per-experiment span waterfall on
//	                                     # stderr (stdout unchanged)
//
// The sweeps fan out on a bounded worker pool (internal/parallel);
// -workers caps it (default: all CPUs). Reports are byte-identical for
// any -workers value: progress and wall-clock lines go to stderr, so
// stdout can be diffed across settings.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vup/internal/experiments"
	"vup/internal/fstore"
	"vup/internal/obs/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vup-experiments: ")

	var (
		runID    = flag.String("run", "all", "experiment id to run, or \"all\"")
		scale    = flag.String("scale", "small", `"small" (laptop) or "full" (study scale)`)
		csvDir   = flag.String("csv", "", "directory to write the regenerated data series as CSV (optional)")
		mdPath   = flag.String("md", "", "write a combined Markdown report to this path (optional)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		seed     = flag.Int64("seed", 1, "generation seed")
		timing   = flag.Bool("timing", false, "print the collected pipeline stage timings after the run (live Section 4.5 table)")
		workers  = flag.Int("workers", 0, "worker-pool size for the parallel sweeps (<=0: all CPUs; 1: sequential). Reports are byte-identical at any setting")
		traced   = flag.Bool("trace", false, "trace each experiment and print its span waterfall to stderr (stdout stays byte-identical)")
		storeDir = flag.String("store-dir", "", "save the evaluation fleet as a binary store directory (internal/fstore) before running, so a vup-server can serve the exact datasets the figures used")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}

	var cfg experiments.Config
	switch *scale {
	case "small":
		cfg = experiments.Small()
	case "full":
		cfg = experiments.Full()
	default:
		log.Fatalf("unknown scale %q (want small or full)", *scale)
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	if *storeDir != "" {
		datasets, err := experiments.Datasets(cfg)
		if err != nil {
			log.Fatalf("building evaluation fleet: %v", err)
		}
		dir, err := fstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("opening store %s: %v", *storeDir, err)
		}
		if _, err := dir.Save(datasets); err != nil {
			log.Fatalf("saving store %s: %v", *storeDir, err)
		}
		if err := dir.Close(); err != nil {
			log.Fatalf("closing store %s: %v", *storeDir, err)
		}
		log.Printf("saved %d evaluation vehicles to store %s", len(datasets), *storeDir)
	}

	ids := experiments.IDs()
	if *runID != "all" {
		ids = strings.Split(*runID, ",")
	}
	// One keep-everything collector for the whole run: figure sweeps
	// are traced end to end, and each waterfall prints to stderr so
	// stdout stays byte-identical with and without -trace.
	var collector *trace.Collector
	if *traced {
		collector = trace.NewCollector(trace.Options{SampleRate: 1, Capacity: len(ids) + 1, Seed: *seed})
	}

	var md strings.Builder
	if *mdPath != "" {
		fmt.Fprintf(&md, "# Regenerated experiments (scale %s, seed %d)\n\n", *scale, *seed)
	}
	for _, id := range ids {
		start := time.Now()
		ctx, root := collector.StartTrace(context.Background(), "experiment "+id)
		rep, err := experiments.RunContext(ctx, id, cfg)
		root.SetError(err)
		root.End()
		if collector != nil {
			if td, ok := collector.Get(root.TraceID()); ok {
				_, _ = fmt.Fprint(os.Stderr, trace.Waterfall(td))
			}
		}
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(rep.Render())
		fmt.Println()
		// Wall-clock goes to stderr: stdout stays byte-identical across
		// -workers settings (the determinism contract of the sweeps).
		log.Printf("%s regenerated in %v", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				log.Fatalf("%s: %v", id, err)
			}
		}
		if *mdPath != "" {
			md.WriteString(rep.RenderMarkdown())
			md.WriteString("\n")
		}
	}
	if *timing {
		rep := experiments.StageTimings()
		fmt.Println(rep.Render())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				log.Fatalf("%s: %v", rep.ID, err)
			}
		}
		if *mdPath != "" {
			md.WriteString(rep.RenderMarkdown())
			md.WriteString("\n")
		}
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *mdPath)
	}
}

func writeCSVs(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, tab := range rep.Tables {
		path := filepath.Join(dir, tab.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tab.WriteCSV(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}
