package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles vup-lint once into a temp dir and returns its
// path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vup-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module the binary can lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint executes the binary against dir and returns combined output
// and exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-C", dir}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s: %v\n%s", bin, err, out)
	}
	return string(out), exit.ExitCode()
}

func TestBinaryAgainstTempModule(t *testing.T) {
	bin := buildBinary(t)

	t.Run("violations exit 1", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import (
	"fmt"
	"os"
)

func Cleanup() {
	os.Remove("scratch")
	fmt.Println("cleaned")
}
`,
		})
		out, code := runLint(t, bin, dir)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		for _, want := range []string{
			"lib.go:9:2: errdiscipline:",
			"lib.go:10:2: printhygiene:",
			"2 diagnostic(s)",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("clean module exits 0", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import "os"

func Cleanup() error {
	return os.Remove("scratch")
}

func BestEffort() {
	os.Remove("scratch") //lint:allow errdiscipline scratch may not exist; removal is best-effort
}
`,
		})
		out, code := runLint(t, bin, dir)
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
	})

	t.Run("rule selection", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import (
	"fmt"
	"os"
)

func Cleanup() {
	os.Remove("scratch")
	fmt.Println("cleaned")
}
`,
		})
		out, code := runLint(t, bin, dir, "-rules", "printhygiene", "./...")
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		if strings.Contains(out, "errdiscipline") {
			t.Errorf("errdiscipline should be off:\n%s", out)
		}
	})

	t.Run("flow rule violations exit 1", func(t *testing.T) {
		// The import path suffix internal/server puts the fixture in
		// ctxwait's scope; the loop defer trips deferinloop.
		dir := writeModule(t, map[string]string{
			"internal/server/wait.go": `package server

import "sync"

func Wait(done chan struct{}) {
	<-done
}

func Sweep(mus []*sync.Mutex) {
	for _, mu := range mus {
		mu.Lock()
		defer mu.Unlock()
	}
}
`,
		})
		out, code := runLint(t, bin, dir)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		for _, want := range []string{
			"wait.go:6:2: ctxwait:",
			"wait.go:12:3: deferinloop:",
			"2 diagnostic(s)",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("json output", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import "os"

func Cleanup() {
	os.Remove("scratch")
}
`,
		})
		out, code := runLint(t, bin, dir, "-json", "./...")
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		// CombinedOutput interleaves the stderr count line; trim to the
		// JSON array before decoding.
		payload := out[strings.Index(out, "[") : strings.LastIndex(out, "]")+1]
		var diags []struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Col     int    `json:"col"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		if err := json.Unmarshal([]byte(payload), &diags); err != nil {
			t.Fatalf("decoding -json output: %v\n%s", err, out)
		}
		if len(diags) != 1 {
			t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
		}
		d := diags[0]
		if filepath.Base(d.File) != "lib.go" || d.Line != 6 || d.Col != 2 ||
			d.Rule != "errdiscipline" || !strings.Contains(d.Message, "os.Remove") {
			t.Errorf("unexpected diagnostic: %+v", d)
		}
		if strings.Contains(payload, "errdiscipline:") {
			t.Errorf("-json output should not contain text-form diagnostics:\n%s", out)
		}
	})

	t.Run("json clean module emits empty array", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": "package lib\n\nfunc OK() {}\n",
		})
		out, code := runLint(t, bin, dir, "-json", "./...")
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
		if strings.TrimSpace(out) != "[]" {
			t.Errorf("output = %q, want an empty JSON array", out)
		}
	})

	t.Run("load error exits 2", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": "package lib\n\nfunc Broken() { return 1 }\n",
		})
		out, code := runLint(t, bin, dir)
		if code != 2 {
			t.Fatalf("exit = %d, want 2\n%s", code, out)
		}
	})

	t.Run("unknown rule exits 2", func(t *testing.T) {
		out, code := runLint(t, bin, t.TempDir(), "-rules", "nonsense")
		if code != 2 {
			t.Fatalf("exit = %d, want 2\n%s", code, out)
		}
		if !strings.Contains(out, "unknown rule") {
			t.Errorf("output missing rule list:\n%s", out)
		}
	})
}
