package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles vup-lint once into a temp dir and returns its
// path.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "vup-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module the binary can lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runLint executes the binary against dir and returns combined output
// and exit code.
func runLint(t *testing.T, bin, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-C", dir}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s: %v\n%s", bin, err, out)
	}
	return string(out), exit.ExitCode()
}

func TestBinaryAgainstTempModule(t *testing.T) {
	bin := buildBinary(t)

	t.Run("violations exit 1", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import (
	"fmt"
	"os"
)

func Cleanup() {
	os.Remove("scratch")
	fmt.Println("cleaned")
}
`,
		})
		out, code := runLint(t, bin, dir)
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		for _, want := range []string{
			"lib.go:9:2: errdiscipline:",
			"lib.go:10:2: printhygiene:",
			"2 diagnostic(s)",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("clean module exits 0", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import "os"

func Cleanup() error {
	return os.Remove("scratch")
}

func BestEffort() {
	os.Remove("scratch") //lint:allow errdiscipline scratch may not exist; removal is best-effort
}
`,
		})
		out, code := runLint(t, bin, dir)
		if code != 0 {
			t.Fatalf("exit = %d, want 0\n%s", code, out)
		}
	})

	t.Run("rule selection", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": `package lib

import (
	"fmt"
	"os"
)

func Cleanup() {
	os.Remove("scratch")
	fmt.Println("cleaned")
}
`,
		})
		out, code := runLint(t, bin, dir, "-rules", "printhygiene", "./...")
		if code != 1 {
			t.Fatalf("exit = %d, want 1\n%s", code, out)
		}
		if strings.Contains(out, "errdiscipline") {
			t.Errorf("errdiscipline should be off:\n%s", out)
		}
	})

	t.Run("load error exits 2", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"lib/lib.go": "package lib\n\nfunc Broken() { return 1 }\n",
		})
		out, code := runLint(t, bin, dir)
		if code != 2 {
			t.Fatalf("exit = %d, want 2\n%s", code, out)
		}
	})

	t.Run("unknown rule exits 2", func(t *testing.T) {
		out, code := runLint(t, bin, t.TempDir(), "-rules", "nonsense")
		if code != 2 {
			t.Fatalf("exit = %d, want 2\n%s", code, out)
		}
		if !strings.Contains(out, "unknown rule") {
			t.Errorf("output missing rule list:\n%s", out)
		}
	})
}
