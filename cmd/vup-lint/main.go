// Command vup-lint runs the project's static-analysis suite (package
// internal/lint) over Go packages and reports file:line:col
// diagnostics for rule violations — the style rules (determinism,
// float-safety, error-discipline, metric-naming, print-hygiene) and
// the flow rules (pinleak, lockhold, ctxwait, deferinloop).
//
// Usage:
//
//	vup-lint [-C dir] [-rules determinism,floatsafety] [-json] [packages...]
//
// Packages default to ./... . Exit status is 0 when the tree is
// clean, 1 when diagnostics were reported, and 2 on a load or usage
// error. With -json, diagnostics go to stdout as a JSON array (exit
// codes unchanged) for machine consumers such as the CI annotation
// step. Intentional violations are suppressed per line with
//
//	//lint:allow <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vup/internal/lint"
)

// jsonDiag is the machine-readable rendering of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vup-lint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to this directory before loading packages")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "vup-lint:", err)
		return 2
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "vup-lint:", err)
		return 2
	}

	wd, _ := os.Getwd()
	found := []jsonDiag{} // non-nil so -json renders [] on a clean tree
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg, analyzers) {
			if wd != "" {
				if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			if !*asJSON {
				fmt.Println(d)
			}
			found = append(found, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Rule:    d.Rule,
				Message: d.Message,
			})
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(found); err != nil {
			_, _ = fmt.Fprintln(os.Stderr, "vup-lint:", err)
			return 2
		}
	}
	if len(found) > 0 {
		_, _ = fmt.Fprintf(os.Stderr, "vup-lint: %d diagnostic(s)\n", len(found))
		return 1
	}
	return 0
}

func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, ruleNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames(all []*lint.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
