// Command vup-lint runs the project's static-analysis suite (package
// internal/lint) over Go packages and reports file:line:col
// diagnostics for violations of the determinism, float-safety, error-
// discipline, metric-naming and print-hygiene rules.
//
// Usage:
//
//	vup-lint [-C dir] [-rules determinism,floatsafety] [packages...]
//
// Packages default to ./... . Exit status is 0 when the tree is
// clean, 1 when diagnostics were reported, and 2 on a load or usage
// error. Intentional violations are suppressed per line with
//
//	//lint:allow <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vup/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("vup-lint", flag.ContinueOnError)
	dir := fs.String("C", ".", "change to this directory before loading packages")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "vup-lint:", err)
		return 2
	}

	pkgs, err := lint.Load(*dir, patterns...)
	if err != nil {
		_, _ = fmt.Fprintln(os.Stderr, "vup-lint:", err)
		return 2
	}

	wd, _ := os.Getwd()
	count := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Check(pkg, analyzers) {
			if wd != "" {
				if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
					d.Pos.Filename = rel
				}
			}
			fmt.Println(d)
			count++
		}
	}
	if count > 0 {
		_, _ = fmt.Fprintf(os.Stderr, "vup-lint: %d diagnostic(s)\n", count)
		return 1
	}
	return 0
}

func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	all := lint.All()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", name, ruleNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames(all []*lint.Analyzer) string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
