package vup

// Integration tests covering the full acquisition-to-prediction path:
// CAN frames emitted by the simulated on-board unit, aggregated into
// 10-minute reports, degraded by a lossy uplink, collected by the
// server, repaired and aggregated by the ETL pipeline, and finally
// evaluated by the prediction core — the complete system of the paper
// in one pass.

import (
	"math"
	"testing"
	"time"

	"vup/internal/canbus"
	"vup/internal/core"
	"vup/internal/etl"
	"vup/internal/fleet"
	"vup/internal/randx"
	"vup/internal/regress"
	"vup/internal/telematics"
	"vup/internal/weather"
)

// TestFrameLevelPathMatchesFastPath drives ~6 months of one vehicle
// through the full CAN-frame path and checks the resulting dataset
// against the usage series that generated it.
func TestFrameLevelPathMatchesFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("frame-level simulation is slow")
	}
	rng := randx.New(77)
	v := fleet.Vehicle{ID: "veh-int", Model: fleet.Model{Type: fleet.Grader, Index: 0}, Country: "DE"}
	unit := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, 77, rng.Split())}
	days := 180
	usage := unit.Model.Simulate(fleet.StudyStart, days)

	device := telematics.NewDevice(v, rng.Split())
	uplink := telematics.NewUplink(0.03, 0.4, rng.Split())
	server := telematics.NewServer()
	faults := telematics.NewFaultModel(rng.Split())
	faultCounts := make([]int, days)

	for i, day := range usage {
		reports, err := device.SimulateDay(day.Date, day.Hours, 2*time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		server.Ingest(uplink.Transmit(reports))
		dtcs := faults.Step(day.Hours)
		faultCounts[i] = len(dtcs)
		// The diagnostic path round-trips through DM1 frames.
		frames, err := telematics.DM1Frames(dtcs, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, decoded, err := canbus.DecodeDM1(frames)
		if err != nil || len(decoded) != len(dtcs) {
			t.Fatalf("DM1 round trip: %v (%d vs %d)", err, len(decoded), len(dtcs))
		}
	}

	d, err := etl.FromReports(v, server.Reports(v.ID), fleet.StudyStart, days)
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := etl.Clean(d, etl.MissingZero)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachFaults(faultCounts); err != nil {
		t.Fatal(err)
	}
	t.Logf("uplink losses repaired on %d day(s)", repaired)

	// The reconstructed daily hours must track the generated usage on
	// the days that reached the server. Residual deviation is genuine
	// data degradation — reports lost mid-day to the bursty uplink and
	// sessions clipped at midnight — which the paper's cleaning step
	// cannot recover either.
	var absErr, total float64
	for i, day := range usage {
		if !d.Observed[i] {
			continue // lost entirely to an outage; Clean zeroed it
		}
		absErr += math.Abs(d.Hours[i] - day.Hours)
		total += day.Hours
	}
	if total == 0 {
		t.Fatal("no usage simulated")
	}
	if frac := absErr / total; frac > 0.2 {
		t.Errorf("reconstructed hours deviate by %.1f%% of total", 100*frac)
	}

	// And the prediction core must run end to end on it.
	cfg := core.DefaultConfig()
	cfg.Algorithm = regress.AlgLasso
	cfg.W = 90
	cfg.K = 8
	cfg.MaxLag = 21
	cfg.Stride = 7
	cfg.Channels = []string{canbus.ChanFuelRate, etl.ChanFaultCount}
	res, err := core.EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) == 0 || math.IsNaN(res.PE) {
		t.Fatalf("evaluation failed: %+v", res)
	}
}

// TestWeatherPathEndToEnd exercises the future-work weather loop:
// weather-modulated usage, attached forecast features, evaluation and
// a weather-aware forecast.
func TestWeatherPathEndToEnd(t *testing.T) {
	rng := randx.New(88)
	v := fleet.Vehicle{ID: "veh-wx", Model: fleet.Model{Type: fleet.Paver, Index: 0}, Country: "GB"}
	unit := fleet.Unit{Vehicle: v, Model: fleet.NewUsageModel(v, 88, rng.Split())}
	days := 500
	gen := weather.NewGenerator(v.Country, 88)
	wx, err := gen.Simulate(fleet.StudyStart, days)
	if err != nil {
		t.Fatal(err)
	}
	usage := unit.Model.SimulateWeather(fleet.StudyStart, days, wx)
	d, err := etl.FromUsage(unit, usage, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AttachWeather(wx); err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Algorithm = regress.AlgLasso
	cfg.W = 120
	cfg.K = 10
	cfg.MaxLag = 21
	cfg.Stride = 5
	cfg.Channels = []string{canbus.ChanFuelRate}
	cfg.TargetChannels = []string{weather.ChanTemp, weather.ChanPrecip}
	res, err := core.EvaluateVehicle(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.PE) {
		t.Fatal("no PE")
	}

	// Forecast under a known rainy vs dry forecast: the rainy forecast
	// must not predict more work for this rain-sensitive paver.
	rainy, _, err := core.ForecastWith(d, cfg, map[string]float64{weather.ChanTemp: 12, weather.ChanPrecip: 25})
	if err != nil {
		t.Fatal(err)
	}
	dry, _, err := core.ForecastWith(d, cfg, map[string]float64{weather.ChanTemp: 18, weather.ChanPrecip: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rainy > dry+0.75 {
		t.Errorf("rainy forecast (%v h) predicts more work than dry (%v h)", rainy, dry)
	}
}

// TestFleetGenerationToForecastPath is the user-facing happy path via
// the public facade.
func TestFleetGenerationToForecastPath(t *testing.T) {
	fc := SmallFleet()
	fc.Units = 6
	fc.Days = 420
	datasets, err := GenerateDatasets(fc, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Algorithm = AlgGB
	cfg.W = 100
	cfg.K = 8
	cfg.MaxLag = 21
	cfg.Stride = 20
	cfg.Channels = []string{canbus.ChanFuelRate}
	fr, err := EvaluateFleet(datasets, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Results) == 0 {
		t.Fatal("no fleet results")
	}
	for _, d := range datasets[:2] {
		hours, _, err := Forecast(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hours < 0 || hours > 24 {
			t.Fatalf("forecast = %v", hours)
		}
	}
}
